// Resumable single-job lifecycle engine: the full ClusterRuntime fault /
// mitigation state machine (fault activation at iteration boundaries,
// mid-transfer strikes, retry-backoff / reroute / isolate-restart-from-
// checkpoint, the availability ledger) restructured as a coroutine that
// yields whenever it needs simulated time to pass.
//
// Two drive modes share one code path:
//
//  * Single mode (fleet_mode = false): awaits never suspend — the engine
//    advances its own FluidSim inline, so start() executes the entire run
//    exactly as the old ClusterRuntime::run_job() did, byte for byte
//    (same RNG draw order, same telemetry, same trace events, same
//    ledger). ClusterRuntime is now a thin shell over this engine.
//
//  * Fleet mode: every forward sim advance suspends with a wake time and
//    the engine parks at each iteration boundary, so a fleet scheduler
//    can interleave many engines over one shared FluidSim, deliver
//    faults that strike mid-flight, and interrupt a job for preemption
//    or elastic shrink/regrow. The sim is only ever advanced by the
//    resumed engine (to its own awaited time, which the scheduler
//    guarantees is the global minimum), keeping the fluid model exact
//    for every tenant.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monitor/faults.h"
#include "monitor/store.h"
#include "net/fluid_sim.h"
#include "net/wcmp.h"
#include "parallel/placement.h"

namespace astral::obs {
class Tracer;
class Metrics;
}  // namespace astral::obs

namespace astral::monitor {

class TelemetryFaultModel;
class StreamAnalyzer;

/// How the job reacts to a localized failure (§3.3 -> operations).
struct RecoveryConfig {
  bool enabled = false;
  /// A checkpoint is durable every this many committed iterations;
  /// restarts replay from the last multiple.
  int checkpoint_interval = 2;
  int max_restarts = 4;  ///< IsolateRestart budget before giving up.
  int max_retries = 3;   ///< Retry budget per transient fault.
  /// Modeled time from failure to the monitoring system noticing.
  core::Seconds detect_time = 5.0;
  /// Scheduler + framework time to relaunch from a checkpoint.
  core::Seconds restart_time = 60.0;
  core::Seconds backoff_base = 2.0;  ///< First retry wait.
  double backoff_factor = 2.0;       ///< Exponential backoff multiplier.
  /// Seeded retry-backoff jitter as a ± fraction of the computed wait
  /// (0.25 -> ±25%), so concurrent tenants hit by one fault don't retry
  /// in lockstep. 0 (the default) draws nothing and is byte-identical
  /// to the pre-jitter engine. Must lie in [0, 1).
  double backoff_jitter = 0.0;
};

/// Validates an (enabled) recovery config. Returns a ';'-joined list of
/// indexed diagnostics ("[0] checkpoint_interval must be > 0 (got -2)"),
/// or nullopt when the config is usable. Engines reject bad configs at
/// construction instead of silently misbehaving mid-run.
std::optional<std::string> validate_recovery(const RecoveryConfig& rc);

/// Gray-failure routing policy: what the engine does about links that
/// degrade without dying. Default `Off` never watches link health, so
/// every legacy code path stays byte-identical to the pre-gray engine.
struct GrayRoutingConfig {
  enum class Mode : std::uint8_t {
    Off,            ///< Gray faults degrade the run; nobody reacts.
    BinaryIsolate,  ///< Old-school: cordon a degraded link outright and
                    ///< restore it when it recovers — oscillates under
                    ///< flapping, paying a config push each swing.
    Wcmp,           ///< Weighted derate + flap damping (net::WcmpController);
                    ///< mitigation latches instead of oscillating.
  };
  Mode mode = Mode::Off;
  /// Wcmp mode only: false disables the suppress/reuse hysteresis (the
  /// oscillating baseline the property tests compare against).
  bool flap_damping = true;
  net::WcmpConfig wcmp;  ///< Health thresholds + weighted-rebalance knobs.
  /// A committed iteration slower than healthy by this factor arms
  /// engage-direction mitigation; below it observed degradations are
  /// noted but not acted on (clean runs never mitigate on noise).
  double arm_slowdown = 1.15;
  /// Config-push stall charged per WCMP weight/port update (hitless-ish).
  core::Seconds derate_push_time = 1.0;
  /// Drain + cordon (or restore) stall charged per binary isolate event.
  core::Seconds isolate_push_time = 5.0;
  /// Wcmp mode, > 0: a SlowNic straggler whose uplinks stay degraded for
  /// this many consecutive control ticks escalates up the ladder from
  /// Derate to IsolateRestart (needs recovery.enabled). 0 = never.
  int escalate_after_ticks = 0;
};

struct JobConfig {
  int hosts = 16;         ///< Job hosts (acquired via `placement`).
  int iterations = 10;
  core::Seconds compute_time = 0.05;  ///< Healthy per-iteration compute.
  core::Bytes comm_bytes = 32 * 1024 * 1024;  ///< Per ring QP per iteration.
  core::Seconds qp_sample_interval = core::msec(2.0);
  /// Communication exceeding this multiple of the expected time is a
  /// hang (the job's collective timeout).
  double hang_timeout_factor = 50.0;
  /// §5 PCIe incident: physical-layer PCIe monitoring was added only
  /// after the first occurrence; before that the root cause is invisible.
  bool pcie_monitoring = true;
  RecoveryConfig recovery;
  /// Host-acquisition policy (see parallel::place_hosts). InOrder is the
  /// legacy ClusterRuntime behaviour: the first n fabric hosts.
  parallel::HostPolicy placement = parallel::HostPolicy::InOrder;
  /// Ambient trace key identifying this job in a campaign-wide flight
  /// recording (see obs::TraceKeys); purely observational.
  std::int64_t job_id = 0;
  /// Gray-failure mitigation policy (default Off: byte-identical legacy).
  GrayRoutingConfig gray;
};

enum class MitigationAction : std::uint8_t {
  None,            ///< No mitigation ran (recovery disabled).
  RetryBackoff,    ///< Transient fault: wait it out, retry the iteration.
  Reroute,         ///< Network fault: route around the dead link/switch.
  Derate,          ///< Gray fault: reweight WCMP + re-spread ports; the
                   ///< link stays up at reduced weight. Sits between
                   ///< Reroute and IsolateRestart on the severity ladder.
  IsolateRestart,  ///< Host fault: cordon the host, restart from checkpoint.
  Abort,           ///< Budget exhausted; job gives up (legacy behaviour).
};

const char* to_string(MitigationAction a);

/// One mitigation attempt. MTTR decomposes per the paper's pipeline:
/// detect (monitoring latency) + locate (hierarchical analyzer) +
/// recover (backoff / failover / restart-from-checkpoint).
struct MitigationRecord {
  int fault_index = 0;   ///< Index into the injected schedule.
  int at_iteration = 0;  ///< Iteration the failure surfaced in.
  Manifestation observed = Manifestation::FailStop;
  MitigationAction action = MitigationAction::None;
  bool succeeded = false;
  core::Seconds detect_time = 0.0;
  core::Seconds locate_time = 0.0;
  core::Seconds recover_time = 0.0;
  core::Seconds mttr() const { return detect_time + locate_time + recover_time; }
};

struct RunOutcome {
  bool completed = false;
  int stopped_at_iteration = -1;  ///< Iteration of abort/hang; -1 if none.
  std::optional<Manifestation> observed;  ///< Empty for a healthy run.

  // ---- Recovery ledger (zeros when recovery is disabled).
  std::vector<MitigationRecord> mitigations;
  int restarts = 0;  ///< IsolateRestart mitigations taken.
  int retries = 0;   ///< RetryBackoff mitigations taken.
  int reroutes = 0;  ///< Flows moved by in-flight failover.
  int derates = 0;   ///< WCMP Derate mitigations taken (gray routing).
  int gray_isolates = 0;  ///< Binary-isolate cordon/restore events.
  /// Times gray mitigation re-engaged on a link after disengaging (a
  /// cordon after a restore, a derate after a reinstatement). The damped
  /// WCMP mode provably keeps this 0 under adversarial flapping.
  int oscillations = 0;
  int committed_iterations = 0;  ///< Iterations done and checkpoint-safe.
  core::Seconds useful_time = 0.0;  ///< Time in iterations that committed.
  core::Seconds wasted_time = 0.0;  ///< Failed attempts + replayed work.
  core::Seconds downtime = 0.0;     ///< Detect + locate + recover stalls.
  core::Seconds makespan = 0.0;     ///< Wall clock of the whole run.
  /// committed * healthy-iteration-time / makespan: the fraction of wall
  /// clock converted into training progress (1.0 = no faults, no noise).
  double goodput = 0.0;
};

/// Host config fingerprints for the offline config-verify tool; the
/// HostEnvConfig fault plants an inconsistency.
struct HostConfig {
  std::string nccl_version = "2.21.5";
  std::string driver_version = "535.161.08";
  bool pfc_enabled = true;
  int dcqcn_k = 55;
  bool operator==(const HostConfig&) const = default;
};

class JobEngine {
 public:
  /// `hosts` are the fabric host nodes backing ranks 0..cfg.hosts-1 (the
  /// placement decision is the caller's). In fleet mode the engine
  /// cooperates with a scheduler (see the drive protocol below) and a
  /// segment may resume from `start_iteration` (must be a checkpoint
  /// multiple). Throws std::invalid_argument when cfg.recovery is
  /// enabled and invalid (see validate_recovery).
  JobEngine(topo::Fabric& fabric, net::FluidSim& sim, JobConfig cfg,
            std::uint64_t seed, std::vector<topo::NodeId> hosts,
            bool fleet_mode = false, int start_iteration = 0);
  ~JobEngine();
  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  // ---- Fault injection (before start()).
  void inject(const FaultSpec& fault);
  /// Injects a whole schedule. Schedules containing gray faults are
  /// additionally checked with validate_schedule (overlapping windows on
  /// one link/host rejected); crisp-only schedules keep the permissive
  /// legacy per-spec validation (cascades on one element are a feature).
  void inject(const FaultSchedule& schedule);
  FaultSpec make_fault(RootCause cause, Manifestation m, int at_iteration);
  FaultSpec make_mid_transfer_tor_death(int at_iteration, double fraction = 0.5);
  /// Builds a gray fault targeted at this job: FlappingLink /
  /// PartialDegrade pick a job-path link `hops_from_src` in (distinct
  /// hops give distinct targets for multi-fault schedules); SlowNic draws
  /// a straggler rank and pins its rail-0 uplink as the telemetry anchor.
  FaultSpec make_gray_fault(GrayKind kind, int at_iteration,
                            int hops_from_src = 2);

  // ---- Drive protocol. start() begins the run; in single mode it
  // executes to completion, in fleet mode it runs until the first
  // suspension. While !done(), resume() continues execution once the
  // shared sim has reached wake_time() (the scheduler guarantees the
  // engine's awaited time is the global minimum before resuming; the
  // engine then advances the sim itself).
  void start();
  bool started() const { return started_; }
  bool done() const { return done_; }
  core::Seconds wake_time() const { return wake_; }
  /// Parked at an iteration boundary (fleet interposition point: safe to
  /// deliver boundary faults or interrupt with zero attempt in flight).
  bool at_boundary() const { return at_boundary_; }
  void resume();

  const RunOutcome& outcome() const { return out_; }

  // ---- Fleet hooks.
  /// Iteration the engine is currently executing (or about to).
  int current_iteration() const { return iter_; }
  /// Last durable checkpoint at or below the current iteration.
  int checkpoint_iteration() const;
  /// Rank of a fabric host node within this job, or -1.
  int rank_of_host(topo::NodeId host) const;
  /// True when any of this wave's flows still holds fabric bandwidth.
  bool comm_in_flight() const;
  /// True when any live (or, idle, predicted ring) path crosses `links`.
  bool crosses_any(std::span<const topo::LinkId> links) const;
  bool owns_flow(net::FlowId id) const;
  /// Injects an already-active fault mid-run (a fleet-level fault whose
  /// blast radius includes this job): emits the injection telemetry and
  /// applies host-side effects (a host dying mid-collective aborts its
  /// flows). Network effects (link down/degrade) are the caller's.
  /// Returns the engine-local fault index for ledger attribution.
  int deliver_fault(FaultSpec spec);
  /// Credits a fleet-level in-flight failover to this job's ledger (the
  /// per-job half of the global reroute_flows the fleet ran): bumps
  /// reroutes, records the Reroute mitigation, marks the fault handled.
  void note_inflight_reroute(int fault_index, int moved, bool all_moved);
  /// Stops the run mid-flight (preemption / elastic transition): aborts
  /// this wave's flows, charges the incomplete attempt to wasted time,
  /// and finalizes the ledger. done() becomes true.
  void interrupt();
  /// Moves committed-but-uncheckpointed iterations from useful to wasted
  /// (the work a new segment will replay) and re-finalizes. Valid once
  /// done. Returns the checkpoint iteration to resume from; `moved`
  /// (optional) receives the useful seconds charged.
  int rewind_to_checkpoint(core::Seconds* moved = nullptr);
  const FaultSpec& fault_spec(int index) const { return faults_[static_cast<std::size_t>(index)].spec; }
  /// Simulated time the fault actually struck (applied), or -1 before.
  /// Campaigns compute detection lead times against this.
  core::Seconds fault_applied_time(int index) const {
    return faults_[static_cast<std::size_t>(index)].applied_at;
  }
  /// The WCMP health tracker (Wcmp mode after start()); nullptr otherwise.
  const net::WcmpController* wcmp() const { return wcmp_.get(); }
  /// Fabric links this engine took down (Reroute mitigations); the owner
  /// restores them when the job leaves the fabric.
  const std::vector<topo::LinkId>& downed_links() const { return downed_links_; }
  void restore_downed_links();

  // ---- Accessors (forwarded by ClusterRuntime).
  const JobConfig& config() const { return cfg_; }
  const std::vector<topo::NodeId>& hosts() const { return hosts_; }
  TelemetryStore& store() { return store_; }
  const TelemetryStore& store() const { return store_; }
  const std::vector<HostConfig>& host_configs() const { return host_configs_; }
  core::Seconds expected_compute() const { return cfg_.compute_time; }
  core::Seconds expected_comm() const;
  core::Seconds healthy_iteration() const { return cfg_.compute_time + expected_comm(); }

  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::Metrics* metrics) { metrics_ = metrics; }
  void set_telemetry_faults(TelemetryFaultModel* model) { degrade_ = model; }
  TelemetryFaultModel* telemetry_faults() const { return degrade_; }
  /// Subscribes the streaming diagnosis service at this engine's store
  /// (post-degrade: the analyzer sees exactly what the store accepted)
  /// and feeds it completed mitigations. nullptr detaches/finalizes.
  /// The analyzer must outlive the engine or be detached first.
  void set_stream_analyzer(StreamAnalyzer* stream);
  StreamAnalyzer* stream_analyzer() const { return stream_; }
  /// Lands held-back (reordered) collector batches after the run ends.
  void flush_telemetry();

 private:
  /// Runtime state of one scheduled fault.
  struct FaultRt {
    FaultSpec spec;
    int index = 0;         ///< Position in the engine's fault list.
    bool applied = false;  ///< Syslog emitted / network effect active.
    bool healed = false;   ///< Self-repaired or healed by a mitigation.
    bool mitigated = false;  ///< A mitigation has dealt with it.
    int active_iters = 0;  ///< Iteration attempts survived while active.
    int retries = 0;       ///< RetryBackoff attempts spent on it.
    core::Seconds applied_at = -1.0;  ///< Sim time the fault struck.
    /// Gray faults: the fabric links this fault degrades (the target
    /// link, or a SlowNic straggler's uplinks). Seeded at activation.
    std::vector<topo::LinkId> gray_links;
    bool gray_down_phase = false;  ///< FlappingLink: currently degraded.
    int gray_degraded_ticks = 0;   ///< Consecutive degraded control ticks.
    bool resolved() const { return healed || mitigated; }
  };

  struct RunTask {
    struct promise_type {
      JobEngine* engine = nullptr;
      RunTask get_return_object() {
        return RunTask{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_always final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception();
    };
    std::coroutine_handle<promise_type> handle;
  };

  /// co_await sim_until(t): single mode (or t already reached) advances
  /// the sim inline; fleet mode parks until the scheduler says t is the
  /// global minimum, then advances the shared sim itself.
  struct SimUntil {
    JobEngine* e;
    core::Seconds t;
    bool await_ready() const { return !e->fleet_ || t <= e->sim_->now(); }
    void await_suspend(std::coroutine_handle<>) { e->wake_ = t; }
    void await_resume() { e->sim_->run(t); }
  };
  SimUntil sim_until(core::Seconds t) { return SimUntil{this, t}; }

  /// co_await boundary(): fleet-mode-only zero-advance yield at the top
  /// of every iteration, the scheduler's interposition point.
  struct Boundary {
    JobEngine* e;
    bool await_ready() const { return !e->fleet_; }
    void await_suspend(std::coroutine_handle<>) {
      e->wake_ = e->sim_->now();
      e->at_boundary_ = true;
    }
    void await_resume() { e->at_boundary_ = false; }
  };
  Boundary boundary() { return Boundary{this}; }

  RunTask run_co();

  void emit_injection_syslog(const FaultSpec& f, core::Seconds t);
  void apply_network_fault(const FaultSpec& f);
  void fail_links(const FaultSpec& f);
  void heal_fault(FaultRt& fr);
  void activate_gray(FaultRt& fr);
  void tick_gray_phases();
  /// Links the gray controller watches this tick (live flow paths + every
  /// active gray fault's links) with their observed capacity fractions.
  std::vector<std::pair<topo::LinkId, double>> gray_observations() const;
  /// Ledger attribution for a gray routing event on `link`.
  int gray_fault_index_for(topo::LinkId link) const;
  topo::LinkId pick_job_path_link(int hops_from_src) const;
  core::Seconds analyzer_locate_time() const;
  template <typename T>
  void ingest(T rec);

  void finalize_outcome();
  void trace_injection(const FaultRt& fr, core::Seconds t);
  void trace_mitigation(const MitigationRecord& rec, core::Seconds t0);
  FaultRt* responsible();
  /// First half of the old mitigate(): everything up to (not including)
  /// the MTTR stall. true -> the caller must wait pending_rec_.mttr()
  /// of simulated time and then call finish_mitigation(); false -> the
  /// job aborts (budget exhausted / recovery disabled).
  bool begin_mitigation(FaultRt* fr, Manifestation observed,
                        core::Seconds attempt_wall);
  void finish_mitigation();
  void strike_fault(FaultRt& fr);
  bool own_flows_drained() const;
  net::FlowSpec ring_spec(int rank) const;

  topo::Fabric& fabric_;
  net::FluidSim* sim_;
  JobConfig cfg_;
  core::Rng rng_;
  core::Rng jitter_rng_;  ///< Drawn only when backoff_jitter > 0.
  TelemetryStore store_;
  std::vector<topo::NodeId> hosts_;
  std::vector<HostConfig> host_configs_;
  /// Deque: deliver_fault appends mid-run while the parked coroutine
  /// frame holds FaultRt pointers, so references must stay stable.
  std::deque<FaultRt> faults_;
  std::vector<double> host_slow_;  ///< Compute slow-down factor per host.
  std::vector<topo::LinkId> downed_links_;  ///< Fabric state to restore.
  // ---- Gray routing state (all empty/null with GrayRoutingConfig off).
  std::unique_ptr<net::WcmpController> wcmp_;  ///< Wcmp mode only.
  std::vector<std::uint16_t> ring_ports_;  ///< Per-rank port overrides (0 = default).
  /// BinaryIsolate mode: links this engine has cordoned for gray
  /// degradation, with per-link cordon counts (oscillation basis).
  std::vector<topo::LinkId> gray_cordoned_;
  std::unordered_map<topo::LinkId, int> gray_cordon_count_;
  int gray_binary_osc_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  TelemetryFaultModel* degrade_ = nullptr;
  StreamAnalyzer* stream_ = nullptr;

  // ---- Run state (members so fleet hooks can read/adjust them while
  // the coroutine is parked; the old run_job() locals otherwise).
  bool fleet_ = false;
  int start_iteration_ = 0;
  core::Seconds start_time_ = 0.0;
  RunOutcome out_;
  core::Seconds now_ = 0.0;
  int iter_ = 0;
  core::Seconds iter_start_ = 0.0;
  std::vector<core::Seconds> iter_useful_;
  std::vector<net::FlowId> flows_;
  core::Seconds hang_deadline_ = 0.0;
  core::Seconds healthy_iter_ = 0.0;
  MitigationRecord pending_rec_;
  bool in_attempt_ = false;  ///< Iteration wall clock accruing (not yet charged).

  std::coroutine_handle<RunTask::promise_type> handle_;
  std::exception_ptr pending_exception_;
  bool started_ = false;
  bool done_ = false;
  bool at_boundary_ = false;
  core::Seconds wake_ = 0.0;

  friend class ClusterRuntime;
};

}  // namespace astral::monitor
