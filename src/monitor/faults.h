// Fault taxonomy and injection (§3.1, Fig. 7): root causes with their
// production prevalence, the failure manifestations they produce, and
// the FaultSpec the cluster runtime injects.
#pragma once

#include <string>

#include "core/rng.h"
#include "core/units.h"
#include "topo/types.h"

namespace astral::monitor {

enum class RootCause : std::uint8_t {
  HostEnvConfig,   // 32%
  NicError,        // 15%
  UserCode,        // 14%
  SwitchConfig,    // 14%
  SwitchBug,       // 7%
  OpticalFiber,    // 7%
  CclBug,          // 3%
  WireConnection,  // 3%
  GpuHardware,     // 2%
  Memory,          // 2%
  LinkFlap,        // 2% (the remaining 1% folded in)
  PcieDegrade,     // the §5 incident; excluded from the sampled taxonomy
};

enum class Manifestation : std::uint8_t { FailStop, FailSlow, FailHang, FailOnStart };

const char* to_string(RootCause cause);
const char* to_string(Manifestation m);

/// Production prevalence of a root cause (Fig. 7 inner ring), as a
/// fraction. PcieDegrade returns 0 (it entered the taxonomy later).
double prevalence(RootCause cause);

/// Draws a root cause according to the Fig. 7 distribution.
RootCause sample_root_cause(core::Rng& rng);

/// Draws a manifestation for a cause. The conditional distributions are
/// chosen so the marginal over causes approximates Fig. 7's outer ring
/// (fail-stop 66%, fail-hang 17%, fail-slow 13%, fail-on-start 4%).
Manifestation sample_manifestation(RootCause cause, core::Rng& rng);

/// Whether the cause lives on the host (Branch #1 of the analyzer) or in
/// the network (Branch #2).
bool is_host_side(RootCause cause);

struct FaultSpec {
  RootCause cause = RootCause::NicError;
  Manifestation manifestation = Manifestation::FailStop;
  int target_host_rank = 0;               ///< For host-side causes.
  topo::LinkId target_link = topo::kInvalidLink;  ///< For network causes.
  int at_iteration = 3;
  /// Degradation severity for fail-slow (residual capacity fraction).
  double degrade_factor = 0.25;
};

}  // namespace astral::monitor
