// Fault taxonomy and injection (§3.1, Fig. 7): root causes with their
// production prevalence, the failure manifestations they produce, and
// the FaultSpec the cluster runtime injects.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "topo/types.h"

namespace astral::monitor {

enum class RootCause : std::uint8_t {
  HostEnvConfig,   // 32%
  NicError,        // 15%
  UserCode,        // 14%
  SwitchConfig,    // 14%
  SwitchBug,       // 7%
  OpticalFiber,    // 7%
  CclBug,          // 3%
  WireConnection,  // 3%
  GpuHardware,     // 2%
  Memory,          // 2%
  LinkFlap,        // 2% (the remaining 1% folded in)
  PcieDegrade,     // the §5 incident; excluded from the sampled taxonomy
};

enum class Manifestation : std::uint8_t { FailStop, FailSlow, FailHang, FailOnStart };

const char* to_string(RootCause cause);
const char* to_string(Manifestation m);

/// Production prevalence of a root cause (Fig. 7 inner ring), as a
/// fraction. PcieDegrade returns 0 (it entered the taxonomy later).
double prevalence(RootCause cause);

/// Draws a root cause according to the Fig. 7 distribution.
RootCause sample_root_cause(core::Rng& rng);

/// Draws a manifestation for a cause. The conditional distributions are
/// chosen so the marginal over causes approximates Fig. 7's outer ring
/// (fail-stop 66%, fail-hang 17%, fail-slow 13%, fail-on-start 4%).
Manifestation sample_manifestation(RootCause cause, core::Rng& rng);

/// Whether the cause lives on the host (Branch #1 of the analyzer) or in
/// the network (Branch #2).
bool is_host_side(RootCause cause);

/// Gray-failure manifestations: faults that degrade a run without ever
/// tripping a binary detector (no errCQE, no fatal syslog, no hang).
/// Production taxonomies attribute most lost GPU-hours to these, not to
/// the crisp Fig. 7 fail-stops. `None` marks an ordinary crisp fault —
/// every pre-existing code path sees only `None` and behaves exactly as
/// before.
enum class GrayKind : std::uint8_t {
  None,           ///< Crisp fault; legacy semantics.
  FlappingLink,   ///< Duty-cycled capacity: `flap_down_iters` iterations at
                  ///< `degrade_factor` residual capacity, then
                  ///< `flap_up_iters` healthy, repeating.
  PartialDegrade, ///< Persistent fractional capacity loss ECMP cannot see
                  ///< (corroded optics, one dead lane in a bundle).
  SlowNic,        ///< Straggler host: its rail uplinks deliver only
                  ///< `degrade_factor` of nominal bandwidth.
};

const char* to_string(GrayKind k);

struct FaultSpec {
  RootCause cause = RootCause::NicError;
  Manifestation manifestation = Manifestation::FailStop;
  int target_host_rank = 0;               ///< For host-side causes.
  topo::LinkId target_link = topo::kInvalidLink;  ///< For network causes.
  int at_iteration = 3;
  /// Degradation severity for fail-slow (residual capacity fraction).
  double degrade_factor = 0.25;
  /// Iteration attempts until the fault self-heals once active; < 0 is
  /// permanent. A link flap heals after 1; a cut fiber never does.
  int repair_iterations = -1;
  /// When > 0, the fault strikes this fraction into the transfer of
  /// `at_iteration` instead of before it — a ToR/uplink dying with flows
  /// in flight (exercises the P3 in-flight failover) or a host crashing
  /// mid-collective (its flows abort).
  double mid_transfer_fraction = 0.0;
  /// Network causes only: the whole switch at the target link's fabric
  /// end dies (every attached link goes down), not just the one link —
  /// the ToR-death scenario dual-homing exists for.
  bool switch_scope = false;
  /// Gray manifestation. When not `None` the fault never produces errCQEs,
  /// fatal syslog, or hangs — it only shifts capacity — and the engine
  /// dispatches on this field before `cause`.
  GrayKind gray = GrayKind::None;
  /// FlappingLink duty cycle, in whole iterations. The link spends
  /// `flap_down_iters` iterations degraded to `degrade_factor`, then
  /// `flap_up_iters` at full capacity, repeating until it self-heals
  /// (`repair_iterations`) or the run ends. Min dwell is 1 on each side.
  int flap_up_iters = 2;
  int flap_down_iters = 1;
};

/// Faults injected into one run: concurrent and cascading failures (a
/// link flap during the replay triggered by an earlier NIC error). Each
/// entry activates independently at its own iteration/strike point.
struct FaultSchedule {
  std::vector<FaultSpec> faults;

  FaultSchedule() = default;
  FaultSchedule(std::initializer_list<FaultSpec> fs) : faults(fs) {}
  void add(const FaultSpec& f) { faults.push_back(f); }
  bool empty() const { return faults.empty(); }
  std::size_t size() const { return faults.size(); }
};

/// Validates a spec against a job of `hosts` ranks on a fabric of
/// `links` links. Returns a description of the problem, or nullopt when
/// the spec is injectable. ClusterRuntime::inject rejects invalid specs
/// with this message instead of silently no-op'ing or indexing OOB.
std::optional<std::string> validate_fault(const FaultSpec& f, int hosts,
                                          std::size_t links);

/// Gray-field validation for one spec. Returns every problem as a
/// numbered `[N]` diagnostic joined by "; " (matching validate_recovery's
/// house style), or nullopt when the gray fields are injectable. Specs
/// with `gray == None` always pass — crisp faults are validated by
/// validate_fault alone.
std::optional<std::string> validate_gray(const FaultSpec& f, int hosts,
                                         std::size_t links);

/// Whole-schedule validation: every spec passes validate_fault +
/// validate_gray, and no two faults own the same target (link id, or host
/// rank for host-side causes) with overlapping active windows
/// [at_iteration, at_iteration + repair_iterations) — permanent faults
/// (`repair_iterations < 0`) own their target forever. Overlap would make
/// capacity restoration ambiguous (one fault's heal resets the
/// degradation the other is still applying), which matters once gray
/// faults toggle capacity mid-run. Numbered `[N]` diagnostics joined by
/// "; "; nullopt when the schedule is injectable.
///
/// JobEngine::inject enforces this only for schedules containing gray
/// faults: legacy crisp campaigns deliberately model cascades on one
/// element (a NIC error followed by that ToR dying) and keep the
/// permissive per-spec validation.
std::optional<std::string> validate_schedule(const FaultSchedule& s,
                                             int hosts, std::size_t links);

/// Whether any fault in the schedule has a gray manifestation.
bool has_gray(const FaultSchedule& s);

}  // namespace astral::monitor
