// Multi-tenant fleet runtime: a scheduler admitting a stream of
// mixed-size training jobs onto ONE shared fabric + FluidSim, placing
// them through parallel::place_hosts policies and multiplexing their
// JobEngine coroutines so simulated time advances globally (the resumed
// engine always advances the sim to its own awaited time, which the
// scheduler guarantees is the fleet-wide minimum).
//
// Faults are fleet-level events (FleetFault): a single link, switch, or
// host failure strikes whatever tenants its blast radius covers — each
// affected engine receives the fault through its own mitigation state
// machine, and the fleet ledger records blast radius per fault (jobs
// touched, host-hours lost). Two fleet-only mechanisms sit on top of
// the per-job machinery:
//
//  * Elastic shrink/regrow: a job that loses a host past its restart
//    budget (terminal Abort on a host-side fault) shrinks to the
//    surviving host set (cordoning the dead host), recomputes its
//    collective groups (a fresh segment re-registers ring QPs over the
//    smaller set), and regrows to full size at an iteration boundary
//    once the cordoned host heals or capacity frees.
//
//  * Preemption with checkpoint-commit: a higher-priority arrival may
//    preempt lower-priority tenants; the victim is charged only its
//    uncheckpointed work (committed-but-uncheckpointed iterations are
//    replayed by the next segment) and re-queues from its checkpoint.
//
// A fleet running exactly one job with no fleet faults reproduces the
// single-job ClusterRuntime ledger bit for bit (enforced by
// monitor_fleet_test and the fleet-campaign CI gate).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/json.h"
#include "monitor/job_engine.h"
#include "net/fluid_sim.h"
#include "parallel/placement.h"

namespace astral::monitor {

/// One fleet-level fault event. Unlike the per-job FaultSpec (which is
/// scheduled against a job's iteration count), fleet faults strike at
/// absolute simulated times and name fabric resources: whichever jobs
/// hold those resources are in the blast radius.
struct FleetFault {
  core::Seconds at_time = 0.0;
  RootCause cause = RootCause::OpticalFiber;
  Manifestation manifestation = Manifestation::FailStop;
  /// Network faults: the stricken link (switch_scope widens to the whole
  /// fabric-side switch). Host faults leave this invalid.
  topo::LinkId target_link = topo::kInvalidLink;
  /// Host faults: index into fabric.topo().hosts(); -1 for network faults.
  int target_host = -1;
  bool switch_scope = false;
  double degrade_factor = 0.2;  ///< FailSlow capacity multiplier.
  /// Repair time; < 0 means the hardware never heals within the run.
  core::Seconds heal_after = -1.0;
};

/// Elastic shrink/regrow policy.
struct ElasticConfig {
  bool enabled = true;
  /// A job never shrinks below this many hosts (and never below 2).
  int min_hosts = 2;
  /// A host cordoned by a shrink returns to the free pool after this
  /// long (hardware swap / reboot).
  core::Seconds cordon_heal_time = 600.0;
};

/// One tenant submitted to the fleet.
struct FleetJobSpec {
  JobConfig job;
  core::Seconds arrival = 0.0;
  /// Higher preempts lower (with FleetConfig::preemption). Ties never
  /// preempt each other.
  int priority = 0;
  std::uint64_t seed = 1;
};

struct FleetConfig {
  parallel::HostPolicy placement = parallel::HostPolicy::RailAligned;
  bool preemption = true;
  ElasticConfig elastic;
  std::uint64_t seed = 1;
  /// Hard wall-clock stop: anything still running is interrupted and
  /// anything still queued is abandoned (safety net against pathological
  /// scenarios; generous by default).
  core::Seconds drain_deadline = 1e9;
};

/// Why a placement segment ended.
enum class SegmentEnd : std::uint8_t {
  Completed,  ///< The job finished its iterations.
  Aborted,    ///< Mitigation budget exhausted, no elastic way out.
  Preempted,  ///< A higher-priority arrival took the hosts.
  Shrunk,     ///< Host lost for good; job continues on fewer hosts.
  Regrown,    ///< Capacity returned; job re-expands to full size.
  Deadline,   ///< The fleet drain deadline interrupted it.
};

const char* to_string(SegmentEnd end);

/// One contiguous placement epoch of a job: fixed host set, one
/// JobEngine, one RunOutcome.
struct SegmentRecord {
  core::Seconds start_time = 0.0;
  core::Seconds end_time = 0.0;
  int start_iteration = 0;
  int hosts = 0;  ///< Host count of this segment (may be < job.hosts).
  SegmentEnd end = SegmentEnd::Completed;
  RunOutcome outcome;
};

/// Whole-lifetime ledger of one tenant.
struct FleetJobLedger {
  int job_id = 0;
  int priority = 0;
  core::Seconds arrival = 0.0;
  core::Seconds first_start = -1.0;  ///< First admission; -1 = never ran.
  core::Seconds finish = -1.0;       ///< Left the fleet (either way).
  bool completed = false;
  int preemptions = 0;
  int shrinks = 0;
  int regrows = 0;
  /// Admission wait: first_start - arrival (0 when never admitted).
  core::Seconds queue_delay = 0.0;
  /// Useful seconds lost to preemption rewinds (uncheckpointed work the
  /// victim replays; the checkpoint-commit charge).
  core::Seconds preempted_cost = 0.0;
  std::vector<SegmentRecord> segments;
  /// Cross-segment roll-up. For a single-segment job this is exactly the
  /// segment's RunOutcome (the ClusterRuntime-equivalence contract).
  RunOutcome merged;
};

/// Blast radius of one fleet fault.
struct FleetFaultLedger {
  FleetFault fault;
  std::vector<int> jobs_touched;  ///< Tenants that saw the fault.
  /// Host-hours of allocated capacity lost to it: mitigation MTTR,
  /// shrink rewinds and the restart gaps they force.
  double host_hours_lost = 0.0;
};

struct FleetOutcome {
  std::vector<FleetJobLedger> jobs;
  std::vector<FleetFaultLedger> faults;
  core::Seconds makespan = 0.0;  ///< Last job departure.
  /// Useful host-seconds / allocated host-seconds over all segments: the
  /// fraction of handed-out capacity converted into committed work.
  double fleet_goodput = 0.0;
  double allocated_host_hours = 0.0;
  double useful_host_hours = 0.0;
  double queue_delay_mean = 0.0;
  double queue_delay_p50 = 0.0;
  double queue_delay_p99 = 0.0;
  double jobs_per_hour = 0.0;      ///< Completed jobs per makespan hour.
  double preemption_cost = 0.0;    ///< Total checkpoint-commit charge (s).
  double completion_rate = 0.0;    ///< Completed / submitted.
  core::Json to_json() const;
};

/// Seeded Poisson arrival process over a mixed job-size distribution;
/// the campaign's workload generator.
struct ArrivalProcessConfig {
  int jobs = 8;
  double arrival_rate = 0.01;  ///< Jobs per simulated second.
  std::vector<int> sizes = {4, 8, 12};
  std::vector<double> size_weights = {0.5, 0.3, 0.2};
  std::vector<int> priorities = {0, 0, 0, 1};  ///< Drawn uniformly.
  int iterations = 8;
  core::Bytes comm_bytes = 8 * 1024 * 1024;
  RecoveryConfig recovery;
  std::uint64_t seed = 1;
};

std::vector<FleetJobSpec> generate_arrivals(const ArrivalProcessConfig& cfg);

class FleetRuntime {
 public:
  FleetRuntime(topo::Fabric& fabric, FleetConfig cfg);

  /// Registers a tenant (before run()). `local_faults` are per-job
  /// FaultSpecs injected into the job's first segment (validated there);
  /// fleet-level hardware faults go through inject() instead. Returns
  /// the job id (submission order).
  int submit(FleetJobSpec spec, std::vector<FaultSpec> local_faults = {});

  /// Schedules a fleet-level fault (before run()).
  void inject(const FleetFault& fault);

  FleetOutcome run();

  net::FluidSim& sim() { return *sim_; }
  /// Telemetry of the job's last (or current) segment engine; nullptr
  /// before the job ever started.
  const TelemetryStore* job_telemetry(int job_id) const;

  void set_tracer(obs::Tracer* tracer);
  void set_metrics(obs::Metrics* metrics);
  /// Attaches the always-on streaming diagnosis service: every segment
  /// engine subscribes it to its telemetry store, fleet faults and
  /// blast-radius charges stream into its per-Pod rollups, and segment
  /// retirement finalizes each job's online diagnosis. The analyzer
  /// must outlive the fleet run. nullptr detaches for future segments.
  void set_stream_analyzer(StreamAnalyzer* stream) { stream_ = stream; }

 private:
  enum class JobState : std::uint8_t { Queued, Starting, Running, Done };

  struct JobRt {
    FleetJobSpec spec;
    std::vector<FaultSpec> local_faults;
    FleetJobLedger ledger;
    JobState state = JobState::Queued;
    int start_iteration = 0;          ///< Next segment resumes here.
    int segment_start_iteration = 0;  ///< Where the live segment began.
    std::vector<int> host_idx;     ///< Fabric host indices held/reserved.
    std::vector<topo::NodeId> host_nodes;
    bool local_faults_spent = false;
    bool regrow_pending = false;  ///< Running shrunk; wants full size.
    /// Healed cordon replacements held for this job's regrow; they stay
    /// out of the free pool until the job regrows or finishes.
    std::vector<int> reserved;
    core::Seconds segment_start = 0.0;
    std::unique_ptr<JobEngine> engine;
    std::vector<std::unique_ptr<JobEngine>> retired;
    /// Engine-local fault index -> fleet fault id, per live engine.
    std::map<int, int> fault_map;
  };

  // Scheduler events; processed in (t, prio, seq) order, before any
  // engine whose wake time is later (ties: events first).
  enum class EventKind : std::uint8_t {
    FaultHeal,
    CordonHeal,
    FaultStrike,
    Arrival,
    StartSegment,
  };
  struct Event {
    core::Seconds t = 0.0;
    EventKind kind = EventKind::Arrival;
    int idx = 0;  ///< Fault id / host index / job id, per kind.
    int seq = 0;
  };

  void push_event(core::Seconds t, EventKind kind, int idx);
  bool pop_next_event(core::Seconds before_or_at, Event* out);

  void try_admit();
  bool admit(JobRt& job, std::vector<int> hosts);
  void start_segment(JobRt& job);
  void preempt(JobRt& victim, int for_job);
  void retire_segment(JobRt& job, SegmentEnd end);
  void finish_job(JobRt& job, bool completed);
  void handle_engine_done(JobRt& job);
  bool try_regrow(JobRt& job);
  void heal_cordon(int host);
  void strike_fleet_fault(int fault_id);
  void heal_fleet_fault(int fault_id);
  /// Pod a fleet fault's target lives in (for the streaming rollups).
  int fault_pod(const FleetFault& f) const;
  /// Streams a blast-radius host-hour charge + updates the ledger.
  void charge_blast(int fault_id, double hours);
  void resume_engine(JobRt& job);
  /// Allocated-capacity charge helper: seconds * hosts -> host-hours.
  static double host_hours(core::Seconds s, int hosts) {
    return s * hosts / 3600.0;
  }

  topo::Fabric& fabric_;
  FleetConfig cfg_;
  std::unique_ptr<net::FluidSim> sim_;
  core::Rng rng_;
  std::deque<JobRt> jobs_;
  std::vector<FleetFaultLedger> faults_;
  /// Links each fleet fault took down (for its heal event).
  std::vector<std::vector<topo::LinkId>> fault_links_;
  std::vector<Event> events_;
  int event_seq_ = 0;
  std::vector<char> free_;  ///< Free mask over fabric hosts.
  /// Cordoned host -> job it was pulled from; on heal the replacement is
  /// offered back to that tenant before rejoining the free pool.
  std::map<int, int> cordon_owner_;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  StreamAnalyzer* stream_ = nullptr;
  bool ran_ = false;
};

}  // namespace astral::monitor
