// Always-on streaming diagnosis service: the §3.3 hierarchical analysis
// turned into an online pipeline. Instead of re-scanning raw streams
// after a run ends, StreamAnalyzer subscribes at the degrade-hardened
// TelemetryStore ingestion seam (monitor::TelemetrySink) and consumes
// every ACCEPTED record exactly once, maintaining per-Pod / per-tier
// hierarchical rollup monitors — link-utilization and PFC/ECN/MOD
// counters, fault and MTTR histograms, QP-rate EWMAs — that reduce
// upward Pod -> tier -> fabric with bounded memory: every per-record
// update lands in a fixed-size counter, EWMA, or fixed-storage
// obs::Histogram, so the analyzer's footprint plateaus at O(pods +
// registered QPs) no matter how many records stream through.
//
// Diagnosis stays exactly the batch algorithm: online trigger state
// (stall/slow/errCQE/fatal-syslog detection per subscription) decides
// WHEN to re-run it, and the drill-down itself delegates to
// HierarchicalAnalyzer over the subscribed store — so the final
// streaming diagnosis is equal (operator==, confidence and evidence
// chain included) to what a batch run over the same telemetry produces.
// The PR-8 store indexes (host->QP, per-QP sample buckets, running
// last_iteration) keep those online re-diagnoses cheap.
//
// Rollups are published as obs::Metrics gauges ("stream.pod<p>..."),
// from which render_pod_dashboard() renders the compact per-Pod text
// dashboard (examples/monitor_dashboard).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/analyzer.h"
#include "obs/metrics.h"

namespace astral::monitor {

/// Which class of fabric link a record rolls up into (the reduction
/// levels under a Pod). Core<->core links, when a fabric has them, count
/// as Spine.
enum class LinkTier : std::uint8_t {
  HostUplink = 0,  ///< Host <-> ToR (tier-1 access).
  LeafAgg = 1,     ///< ToR <-> Agg (tier-2, intra-pod).
  Spine = 2,       ///< Agg <-> Core and above (tier-3, cross-pod).
};
inline constexpr int kLinkTiers = 3;
const char* to_string(LinkTier tier);

/// Classifies a link by its endpoint kinds.
LinkTier link_tier(const topo::Topology& topo, topo::LinkId link);
/// Pod a link rolls up into: the pod of its non-core endpoint (core
/// <-> core links return -1; callers clamp into pod 0).
int link_pod(const topo::Topology& topo, topo::LinkId link);

/// EWMA regression alarms over the per-Pod rollups: the gray-failure
/// precursor detector. A gray fault (flapping link, partial degrade,
/// slow NIC) never trips the binary triggers — no stall, no errCQE, no
/// fatal syslog — but it bends the rollup EWMAs: per-Pod QP goodput
/// sags, PFC/ECN delta rates climb toward a storm, INT hop latency
/// regresses. Each signal keeps a fast and a slow EWMA; an alarm is the
/// rising edge of their ratio crossing its threshold (with hysteresis,
/// so a noisy ratio does not re-raise every sample). Default-disabled:
/// with `enabled == false` nothing here executes and the analyzer's
/// behavior is byte-identical to the pre-alarm service.
struct GrayAlarmConfig {
  bool enabled = false;
  /// Fast / slow EWMA decay rates (fast tracks the incident, slow is
  /// the self-calibrating baseline).
  double fast_alpha = 0.3;
  double slow_alpha = 0.02;
  /// Observations of a signal before its ratio is trusted (startup
  /// guard: both EWMAs seed from the first sample).
  std::uint64_t min_samples = 8;
  /// QP-rate regression: alarm when fast < factor * slow.
  double qp_regress_factor = 0.8;
  /// PFC-storm precursor: alarm when the fast pause-delta EWMA exceeds
  /// factor * slow AND the absolute floor (pauses per sample).
  double pfc_storm_factor = 3.0;
  double pfc_storm_min = 1.0;
  /// ECN marks count toward the storm precursor at this weight (marks
  /// precede pauses in the congestion cascade).
  double ecn_weight = 0.1;
  /// Hop-latency regression: alarm when fast > factor * slow.
  double hop_regress_factor = 1.5;
  /// Hysteresis: a raised alarm clears only when the ratio retreats
  /// past its threshold by this fraction.
  double clear_margin = 0.1;
  /// Retained alarm records (raising keeps counting past the cap; the
  /// earliest alarms are kept — lead time reads the first one).
  std::size_t max_alarms = 256;
};

struct StreamAnalyzerConfig {
  /// Thresholds for the delegated drill-down AND the online triggers.
  /// Must match the batch analyzer's config for the equivalence
  /// contract (streaming diagnosis == HierarchicalAnalyzer::diagnose()).
  AnalyzerConfig analyzer;
  /// Decay of the per-record rollup EWMAs (QP rate, link utilization,
  /// INT hop latency).
  double ewma_alpha = 0.2;
  /// Gray-failure precursor alarms (off by default).
  GrayAlarmConfig gray;
};

/// Which rollup EWMA a gray alarm fired on.
enum class GraySignal : std::uint8_t {
  QpRateRegression = 0,   ///< Per-Pod QP goodput sagged below baseline.
  PfcPrecursor = 1,       ///< PFC/ECN delta rate climbing toward a storm.
  HopLatencyRegression = 2,  ///< INT hop latency regressed.
};
inline constexpr int kGraySignals = 3;
const char* to_string(GraySignal s);

/// One precursor alarm: the rising edge of a signal ratio crossing its
/// threshold in one Pod, stamped with the telemetry time that raised it
/// (lead time = hard-failure time minus this).
struct GrayAlarm {
  core::Seconds t = 0.0;
  int pod = 0;
  GraySignal signal = GraySignal::QpRateRegression;
  double ratio = 0.0;  ///< fast/slow at the moment of raising.
  std::int64_t job_id = 0;
};

/// Link-level aggregate of one (pod, tier) rollup leaf. Fixed size; the
/// upward reduction (reduce_from) merges counters additively and EWMAs
/// sample-weighted.
struct TierRollup {
  std::uint64_t counter_samples = 0;  ///< LinkCounterSamples ingested.
  std::uint64_t ecn_marks = 0;        ///< Effective (post-delta) marks.
  std::uint64_t pfc_pauses = 0;
  std::uint64_t mod_drops = 0;
  double util_ewma = 0.0;  ///< Of samples carrying utilization (> 0).
  std::uint64_t util_samples = 0;
  double hop_latency_ewma = 0.0;  ///< Seconds, from INT probe hops.
  std::uint64_t probe_hops = 0;

  /// Pod -> tier -> fabric reduction stage: counters add, EWMAs merge
  /// weighted by their sample counts.
  void reduce_from(const TierRollup& child);
};

/// Everything the service tracks per Pod: the three link-tier leaves
/// plus host/transport-side aggregates and the fault/MTTR histogram.
/// Fixed footprint (obs::Histogram allocates once at construction).
struct PodRollup {
  std::array<TierRollup, kLinkTiers> tiers;
  double qp_rate_ewma_bps = 0.0;
  std::uint64_t qp_samples = 0;
  std::uint64_t err_cqes = 0;
  std::uint64_t syslog_warn = 0;
  std::uint64_t syslog_error = 0;
  std::uint64_t syslog_fatal = 0;
  std::uint64_t faults = 0;  ///< Mitigated job faults + fleet faults.
  std::uint64_t blast_jobs_touched = 0;
  double blast_host_hours_lost = 0.0;
  obs::Histogram mttr_s;

  /// First reduction stage: this Pod's link stats over its tiers.
  TierRollup links() const;
};

/// The root of the reduction: fabric-wide view over all Pods.
struct FabricRollup {
  TierRollup links;
  double qp_rate_ewma_bps = 0.0;
  std::uint64_t qp_samples = 0;
  std::uint64_t err_cqes = 0;
  std::uint64_t syslog_fatal = 0;
  std::uint64_t faults = 0;
  std::uint64_t blast_jobs_touched = 0;
  double blast_host_hours_lost = 0.0;
};

class StreamAnalyzer {
 public:
  /// What the service needs to know about a job to diagnose it online:
  /// the Seer-forecast expectations (the batch analyzer's inputs) and
  /// the pod of each job host rank (so host-keyed records roll up).
  struct JobContext {
    std::int64_t job_id = 0;
    core::Seconds expected_compute = 0.0;
    core::Seconds expected_comm = 0.0;
    std::vector<int> host_pods;  ///< Pod per job host rank.
  };

  StreamAnalyzer(const topo::Topology& topo, StreamAnalyzerConfig cfg = {});
  ~StreamAnalyzer();
  StreamAnalyzer(const StreamAnalyzer&) = delete;
  StreamAnalyzer& operator=(const StreamAnalyzer&) = delete;

  // ---- Subscriptions. One per live TelemetryStore (per JobEngine
  // segment in fleet mode). The analyzer must outlive its subscribed
  // stores or be detached (unsubscribe) first.

  /// Attaches at `store`'s ingestion seam. Records already in the store
  /// are replayed into the rollups first, so mid-run attachment misses
  /// nothing; from then on every accepted record streams in live.
  void subscribe(TelemetryStore& store, JobContext ctx);
  /// Detaches; runs a final diagnosis over everything the store holds
  /// and files it under the job id (diagnosis() keeps serving it).
  void unsubscribe(TelemetryStore& store);
  std::size_t subscriptions() const { return live_; }

  // ---- Online diagnosis. The returned object is what
  // HierarchicalAnalyzer(store, ...).diagnose() returns over the same
  // telemetry — the equivalence contract tested per scenario.

  /// Current diagnosis of a job (recomputed if records arrived since
  /// the last trigger); falls back to the finalized diagnosis after
  /// unsubscribe. Default-constructed (healthy, no evidence) for an
  /// unknown job.
  Diagnosis diagnosis(std::int64_t job_id = 0);
  /// How many times the job's online diagnosis was (re)computed.
  std::uint64_t revisions(std::int64_t job_id = 0) const;
  /// Online anomaly suspicion (stall / slow / errCQE / fatal syslog
  /// seen, or a gray precursor alarm when those are enabled) — the
  /// trigger driving eager re-diagnosis.
  bool online_anomaly(std::int64_t job_id = 0) const;

  // ---- Gray precursor alarms (empty unless cfg.gray.enabled).

  /// Retained alarm records, oldest first (bounded by
  /// cfg.gray.max_alarms; see alarms_raised for the true total).
  const std::vector<GrayAlarm>& alarms() const { return gray_alarms_; }
  /// Total rising edges, including any past the retention cap.
  std::uint64_t alarms_raised() const { return gray_raised_; }
  /// Telemetry time of the earliest alarm (in `pod`, or anywhere with
  /// pod < 0); -1 when none fired.
  core::Seconds first_alarm_time(int pod = -1) const;

  /// Fires whenever an online trigger produces a *changed* diagnosis
  /// for a job (anomaly onset, then once per completed iteration while
  /// anomalous, and at unsubscribe).
  using DiagnosisCallback =
      std::function<void(std::int64_t job_id, const Diagnosis&, core::Seconds t)>;
  void set_on_diagnosis(DiagnosisCallback cb) { on_diagnosis_ = std::move(cb); }

  /// Fires at most once per `interval` of telemetry time (max of record
  /// timestamps) — the dashboard refresh hook. 0 disables.
  using FrameCallback = std::function<void(core::Seconds t)>;
  void set_frame_callback(core::Seconds interval, FrameCallback cb);

  // ---- Non-store feeds (runtime ledgers that never enter the
  // telemetry store).

  /// A completed mitigation: lands in the pod's fault count and MTTR
  /// histogram (and the fabric-level histogram).
  void note_mitigation(std::int64_t job_id, core::Seconds mttr_s, int pod);
  /// A fleet-level fault struck `jobs_touched` tenants in `pod`.
  void note_fleet_fault(int pod, std::size_t jobs_touched);
  /// Blast-radius capacity charge attributed to `pod` (host-hours).
  void note_blast_radius(int pod, double host_hours_lost);

  // ---- Rollup reads (the reduction stages).

  int pods() const { return static_cast<int>(pods_.size()); }
  const PodRollup& pod(int p) const { return pods_[static_cast<std::size_t>(p)]; }
  /// One tier reduced across all Pods.
  TierRollup tier(LinkTier t) const;
  /// The root: everything reduced to one fabric-wide view.
  FabricRollup fabric() const;
  /// Fabric-level MTTR histogram (recorded in parallel with the per-pod
  /// ones — histograms don't merge, so the root keeps its own).
  const obs::Histogram& fabric_mttr() const { return fabric_mttr_; }
  std::uint64_t records_ingested() const { return records_; }

  /// Bytes the service retains, counting every container's capacity.
  /// Bounded: once the fabric's QPs and pods have been seen this is
  /// EXACTLY constant under further ingestion (the property test).
  std::size_t footprint_bytes() const;

  /// Publishes the rollups as gauges: "stream.pod<p>.*",
  /// "stream.pod<p>.tier<t>.*", "stream.fabric.*", "stream.diag.*",
  /// "stream.blast.*" plus stream.records_ingested / footprint_bytes.
  /// Diagnosis gauges reflect the last computed revision (call
  /// diagnosis() first for up-to-the-record freshness).
  void publish(obs::Metrics& m) const;

 private:
  /// Per-store adapter: carries the job identity the TelemetrySink
  /// callbacks lack, plus the job's online trigger state. Deque storage
  /// keeps the sink pointers stable.
  struct Subscription : TelemetrySink {
    StreamAnalyzer* owner = nullptr;
    TelemetryStore* store = nullptr;
    JobContext ctx;
    bool active = false;

    // Online trigger state (bounded).
    int max_iteration = -1;
    bool stall_seen = false;  ///< comm_time < 0 on any host.
    bool slow_seen = false;   ///< compute/comm over the slow factors.
    bool gray_seen = false;   ///< A gray precursor alarm raised.
    std::uint64_t cqe_count = 0;
    std::uint64_t fatal_count = 0;
    bool anomaly = false;
    int last_diag_iter = -1;

    // Cached online diagnosis.
    Diagnosis diag;
    bool have_diag = false;
    bool dirty = false;
    std::uint64_t revisions = 0;

    /// QP -> pod of its source host (from on_register_qp).
    std::unordered_map<QpId, int> qp_pod;

    void on_record(const NcclTimelineEvent& ev) override;
    void on_record(const QpRateSample& s) override;
    void on_record(const ErrCqeEvent& ev) override;
    void on_record(const SflowPathRecord& r) override;
    void on_record(const IntProbeResult& r) override;
    void on_link_counters(const LinkCounterSample& raw, std::uint64_t d_ecn,
                          std::uint64_t d_pfc) override;
    void on_record(const SyslogEvent& ev) override;
    void on_register_qp(const QpMeta& meta) override;
  };

  PodRollup& pod_of(int pod);
  int pod_of_rank(const Subscription& s, int host_rank) const;
  void advance_clock(core::Seconds t);
  void rediagnose(Subscription& s);
  /// Trigger policy: anomaly onset -> immediately; while anomalous ->
  /// once per newly completed iteration; otherwise just mark dirty.
  void maybe_rediagnose(Subscription& s, bool eager);

  void ingest(Subscription& s, const NcclTimelineEvent& ev);
  void ingest(Subscription& s, const QpRateSample& smp);
  void ingest(Subscription& s, const ErrCqeEvent& ev);
  void ingest(Subscription& s, const SflowPathRecord& r);
  void ingest(Subscription& s, const IntProbeResult& r);
  void ingest_link(Subscription& s, const LinkCounterSample& raw,
                   std::uint64_t d_ecn, std::uint64_t d_pfc);
  void ingest(Subscription& s, const SyslogEvent& ev);
  void ingest_meta(Subscription& s, const QpMeta& meta);

  /// Fast + slow EWMA pair of one gray signal (fixed size).
  struct GrayEwma {
    double fast = 0.0;
    double slow = 0.0;
    std::uint64_t n = 0;
  };
  /// Per-Pod gray alarm state: one EWMA pair and one raised-latch per
  /// signal (the latch is the hysteresis edge detector).
  struct GrayPodState {
    std::array<GrayEwma, kGraySignals> sig;
    std::array<bool, kGraySignals> raised{};
    std::uint64_t alarms = 0;
  };
  /// Feeds one observation of `signal` in `pod` and raises/clears the
  /// alarm latch. No-op unless cfg_.gray.enabled.
  void gray_observe(Subscription& s, int pod, GraySignal signal, double x,
                    core::Seconds t);

  const topo::Topology& topo_;
  StreamAnalyzerConfig cfg_;
  std::vector<PodRollup> pods_;
  std::vector<GrayPodState> gray_;
  std::vector<GrayAlarm> gray_alarms_;
  std::uint64_t gray_raised_ = 0;
  obs::Histogram fabric_mttr_;
  /// Link -> (pod, tier) classification cache, filled lazily per link
  /// (bounded by the fabric's link count).
  std::unordered_map<topo::LinkId, std::pair<std::int16_t, std::int8_t>> link_class_;

  std::deque<Subscription> subs_;  ///< Stable addresses for set_sink.
  std::size_t live_ = 0;
  /// Finalized (unsubscribed) jobs: last diagnosis + revision count.
  struct Finalized {
    Diagnosis diag;
    std::uint64_t revisions = 0;
    bool anomaly = false;
  };
  std::map<std::int64_t, Finalized> finalized_;

  DiagnosisCallback on_diagnosis_;
  FrameCallback on_frame_;
  core::Seconds frame_interval_ = 0.0;
  core::Seconds next_frame_ = 0.0;
  core::Seconds now_ = 0.0;  ///< Max record timestamp seen.
  std::uint64_t records_ = 0;
};

/// Renders the compact per-Pod text dashboard from the "stream.*"
/// gauges a publish() call left in `m` (the dashboard reads ONLY the
/// metrics registry — it works across a snapshot boundary, e.g. in CI
/// from a metrics JSON round-trip).
std::string render_pod_dashboard(const obs::Metrics& m, int pods);

}  // namespace astral::monitor
