#include "monitor/detectors.h"

namespace astral::monitor {

DetectorRegistry DetectorRegistry::with_defaults() {
  DetectorRegistry r = without_pcie();
  // The detector added after the §5 PCIe/PFC-storm incident.
  r.register_detector("PCIe", RootCause::PcieDegrade);
  return r;
}

DetectorRegistry DetectorRegistry::without_pcie() {
  DetectorRegistry r;
  r.register_detector("Xid", RootCause::GpuHardware);
  r.register_detector("ECC", RootCause::Memory);
  r.register_detector("nccl init failed", RootCause::HostEnvConfig);
  r.register_detector("env/config mismatch", RootCause::HostEnvConfig);
  r.register_detector("user forward", RootCause::UserCode);
  r.register_detector("CQE error", RootCause::NicError);
  r.register_detector("ecn threshold", RootCause::SwitchConfig);
  r.register_detector("optical power", RootCause::OpticalFiber);
  r.register_detector("cabling plan", RootCause::WireConnection);
  r.register_detector("link down", RootCause::LinkFlap);
  return r;
}

void DetectorRegistry::register_detector(std::string pattern, RootCause cause) {
  detectors_.push_back({std::move(pattern), cause});
}

std::optional<RootCause> DetectorRegistry::match(const SyslogEvent& ev) const {
  for (auto it = detectors_.rbegin(); it != detectors_.rend(); ++it) {
    if (ev.message.find(it->pattern) != std::string::npos) return it->cause;
  }
  return std::nullopt;
}

}  // namespace astral::monitor
