#include "monitor/detectors.h"

namespace astral::monitor {

DetectorRegistry DetectorRegistry::with_defaults() {
  DetectorRegistry r = without_pcie();
  // The detector added after the §5 PCIe/PFC-storm incident.
  r.register_detector("PCIe", RootCause::PcieDegrade);
  return r;
}

DetectorRegistry DetectorRegistry::without_pcie() {
  DetectorRegistry r;
  // Fatal device signatures pin their cause; warn-level configuration /
  // optics / cabling patterns are strong but can shadow a shared symptom
  // (e.g. a marginal transceiver behind a "clean" config warning).
  r.register_detector("Xid", RootCause::GpuHardware, 0.98);
  r.register_detector("ECC", RootCause::Memory, 0.98);
  r.register_detector("nccl init failed", RootCause::HostEnvConfig, 0.95);
  r.register_detector("env/config mismatch", RootCause::HostEnvConfig, 0.95);
  r.register_detector("user forward", RootCause::UserCode, 0.95);
  r.register_detector("CQE error", RootCause::NicError, 0.95);
  r.register_detector("ecn threshold", RootCause::SwitchConfig, 0.92);
  r.register_detector("optical power", RootCause::OpticalFiber, 0.92);
  r.register_detector("cabling plan", RootCause::WireConnection, 0.92);
  r.register_detector("link down", RootCause::LinkFlap, 0.9);
  return r;
}

void DetectorRegistry::register_detector(std::string pattern, RootCause cause,
                                         double confidence) {
  detectors_.push_back({std::move(pattern), cause, confidence});
}

std::optional<RootCause> DetectorRegistry::match(const SyslogEvent& ev) const {
  if (auto d = detect(ev)) return d->cause;
  return std::nullopt;
}

std::optional<Detection> DetectorRegistry::detect(const SyslogEvent& ev) const {
  for (auto it = detectors_.rbegin(); it != detectors_.rend(); ++it) {
    if (ev.message.find(it->pattern) != std::string::npos) {
      return Detection{it->cause, it->confidence};
    }
  }
  return std::nullopt;
}

}  // namespace astral::monitor
