// Communication groups: ordered sets of global GPU indices participating
// in one collective (a TP group, a DP ring, an EP all-to-all group...).
#pragma once

#include <vector>

namespace astral::coll {

/// Ordered ranks of a collective. Values are global GPU indices into a
/// topo::Fabric (host-major numbering).
struct CommGroup {
  std::vector<int> gpus;

  int size() const { return static_cast<int>(gpus.size()); }
  int rank_of(int gpu) const {
    for (int i = 0; i < size(); ++i) {
      if (gpus[static_cast<std::size_t>(i)] == gpu) return i;
    }
    return -1;
  }
};

}  // namespace astral::coll
