// Runs collective communication operations on the fluid simulator and
// reports completion time and achieved bandwidth.
//
// Traffic shapes follow NCCL:
//  * ring AllReduce / ReduceScatter / AllGather: ring in rank order;
//    intra-host ring edges ride NVLink, host-crossing edges become fabric
//    flows. Every ring step moves size/N per rank, so one step is
//    simulated and scaled by the step count (the fluid rates repeat).
//  * AllToAll: N-1 shifted rounds; in round r, rank i sends to (i+r)%N.
//    With PXN enabled (NVLink-optimized, NCCL 2.12 [2]), a message for a
//    GPU on rail R first hops NVLink to the local rail-R GPU and enters
//    the fabric on rail R — turning every fabric flow into same-rail
//    traffic, which is what makes the same-rail tier 2 of Astral pay off.
//    Without PXN, flows go NIC-to-NIC across rails through Core.
//  * SendRecv: a single flow (PP traffic).
//
// `sample_rounds` simulates an evenly spaced subset of all-to-all rounds
// and extrapolates; symmetric shifts make this accurate and it keeps 1K-
// GPU experiments fast.
#pragma once

#include "coll/comm_group.h"
#include "core/units.h"
#include "net/fluid_sim.h"

namespace astral::coll {

struct CollectiveResult {
  core::Seconds duration = 0.0;  ///< Wall time of the collective.
  core::Seconds fabric_time = 0.0;   ///< Portion gated by the network.
  core::Seconds nvlink_time = 0.0;   ///< Portion gated by NVLink hops.
  core::Bytes fabric_bytes = 0;      ///< Bytes that crossed the fabric.
  double alg_bw = 0.0;  ///< Algorithm bandwidth, bits/sec (size/duration).
  double bus_bw = 0.0;  ///< NCCL-convention bus bandwidth, bits/sec.
  int rounds_simulated = 0;
  int rerouted_flows = 0;  ///< Flows moved to a surviving path mid-collective.
  int aborted_flows = 0;   ///< Flows with no surviving path, dropped.
};

struct CollectiveOptions {
  core::Bps nvlink_bw = core::gBps(450.0);  ///< Per-GPU intra-host bw.
  bool pxn = true;           ///< Rail-aligned all-to-all via NVLink.
  int sample_rounds = 0;     ///< 0 = simulate every all-to-all round.
  std::uint64_t tag = 0;     ///< Base tag for injected flows.
  /// When a collective stalls on dead links, fail over in flight: reroute
  /// live flows through the router (dual-ToR / alternate ECMP) and abort
  /// the ones with no surviving path instead of hanging forever. Off by
  /// default — a stalled collective then parks at `now()` like a real
  /// NCCL hang, which is what the monitoring stack wants to observe.
  bool reroute_on_stall = false;
};

class CollectiveRunner {
 public:
  using Options = CollectiveOptions;

  CollectiveRunner(net::FluidSim& sim, Options opts = {});

  /// Each rank sends `per_pair` bytes to every other rank.
  CollectiveResult all_to_all(const CommGroup& group, core::Bytes per_pair);

  /// Ring AllReduce of `size` bytes (2(N-1) steps of size/N).
  CollectiveResult all_reduce(const CommGroup& group, core::Bytes size);

  /// Hierarchical AllReduce: intra-host reduce-scatter over NVLink, then
  /// per-rail inter-host rings running concurrently on all rails (the
  /// algorithm rail fabrics are built for — every NIC of a host is busy
  /// at once), then intra-host all-gather. Requires whole hosts: the
  /// group must cover each participating host's GPUs completely.
  CollectiveResult all_reduce_hierarchical(const CommGroup& group, core::Bytes size);

  /// Ring ReduceScatter of `size` total bytes ((N-1) steps of size/N).
  CollectiveResult reduce_scatter(const CommGroup& group, core::Bytes size);

  /// Ring AllGather of `size` total bytes ((N-1) steps of size/N).
  CollectiveResult all_gather(const CommGroup& group, core::Bytes size);

  /// Point-to-point transfer between two GPUs (PP traffic).
  CollectiveResult send_recv(int src_gpu, int dst_gpu, core::Bytes size);

  net::FluidSim& sim() { return sim_; }

 private:
  /// The flight recorder rides on the sim (one source of truth): each
  /// public collective gets a Collective-track span (name = algorithm,
  /// value = bytes moved) and sets the ambient collective key so flow
  /// events recorded by FluidSim during the collective inherit it.
  /// Groups are keyed by their anchor rank (gpus.front()) — stable and
  /// deterministic, since CommGroup carries no id of its own.
  struct TraceScope;
  /// Simulates one ring step of `chunk` bytes and returns its duration;
  /// `fabric_edges` (optional) receives the count of host-crossing edges.
  core::Seconds ring_step(const CommGroup& group, core::Bytes chunk,
                          int* fabric_edges = nullptr,
                          CollectiveResult* res = nullptr);

  /// Stall failover: reroute stalled flows, abort the stranded, re-run
  /// until the fabric drains. No-op unless `reroute_on_stall` is set.
  void drain_stalled(CollectiveResult* res);

  net::FluidSim& sim_;
  Options opts_;
  std::uint64_t next_tag_;
  std::int64_t next_collective_id_ = 0;
};

}  // namespace astral::coll
