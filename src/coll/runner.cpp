#include "coll/runner.h"

#include <algorithm>
#include <map>
#include <cmath>

#include "obs/trace.h"

namespace astral::coll {

using core::Bytes;
using core::Seconds;

CollectiveRunner::CollectiveRunner(net::FluidSim& sim, Options opts)
    : sim_(sim), opts_(opts), next_tag_(opts.tag) {}

/// Per-collective recording scope: sets the ambient collective/group keys
/// for the duration of the call (so FluidSim's flow events inherit them)
/// and emits the Collective-track span on destruction. No-op when the sim
/// has no tracer attached.
struct CollectiveRunner::TraceScope {
  TraceScope(CollectiveRunner& runner, const char* name, const CommGroup* group,
             Bytes bytes)
      : tracer(runner.sim_.tracer()),
        name(name),
        bytes(bytes),
        begin(runner.sim_.now()),
        sim(runner.sim_) {
    keys.collective = runner.next_collective_id_++;
    if (group != nullptr && !group->gpus.empty()) keys.group = group->gpus.front();
    if (tracer) prev = tracer->push_ambient(keys);
  }
  ~TraceScope() {
    if (!tracer) return;
    tracer->set_ambient(prev);
    tracer->span(obs::Track::Collective, name, begin, sim.now() - begin, keys,
                 static_cast<double>(bytes));
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  obs::Tracer* tracer;
  const char* name;
  Bytes bytes;
  Seconds begin;
  net::FluidSim& sim;
  obs::TraceKeys keys;
  obs::TraceKeys prev;
};

void CollectiveRunner::drain_stalled(CollectiveResult* res) {
  if (!opts_.reroute_on_stall) return;
  // run() returns with flows still active only when every one of them is
  // stalled on dead or blackholed links. Fail over in flight: re-resolve
  // their paths through the router, drop whatever has no surviving route,
  // and let the survivors finish at re-solved rates.
  obs::Tracer* tracer = sim_.tracer();
  if (tracer && !sim_.idle()) {
    tracer->instant(obs::Track::Collective, "collective.stall", sim_.now());
  }
  while (!sim_.idle()) {
    net::FluidSim::RerouteReport rep = sim_.reroute_flows();
    if (tracer) {
      tracer->instant(obs::Track::Collective, "collective.reroute", sim_.now());
    }
    for (net::FlowId id : rep.stranded) sim_.abort_flow(id);
    if (res != nullptr) {
      res->rerouted_flows += static_cast<int>(rep.rerouted.size());
      res->aborted_flows += static_cast<int>(rep.stranded.size());
    }
    if (rep.rerouted.empty() && rep.stranded.empty()) {
      // Nothing the router can do (e.g. concurrent deaths raced us):
      // abort the remainder rather than spin.
      std::vector<net::FlowId> left(sim_.active_flows().begin(),
                                    sim_.active_flows().end());
      for (net::FlowId id : left) sim_.abort_flow(id);
      if (res != nullptr) res->aborted_flows += static_cast<int>(left.size());
      break;
    }
    sim_.run();
  }
}

CollectiveResult CollectiveRunner::all_to_all(const CommGroup& group, Bytes per_pair) {
  CollectiveResult res;
  const int n = group.size();
  if (n < 2 || per_pair == 0) return res;
  TraceScope trace(*this, "all_to_all", &group,
                   static_cast<Bytes>(static_cast<double>(per_pair) * n * (n - 1)));
  const auto& fabric = sim_.fabric();

  // Choose which shift rounds to simulate.
  std::vector<int> rounds;
  const int total_rounds = n - 1;
  if (opts_.sample_rounds > 0 && opts_.sample_rounds < total_rounds) {
    for (int j = 0; j < opts_.sample_rounds; ++j) {
      int r = 1 + static_cast<int>(std::llround(
                      static_cast<double>(j) * (total_rounds - 1) /
                      std::max(1, opts_.sample_rounds - 1)));
      if (rounds.empty() || rounds.back() != r) rounds.push_back(r);
    }
  } else {
    for (int r = 1; r <= total_rounds; ++r) rounds.push_back(r);
  }

  Seconds fabric_total = 0.0;
  Seconds nvlink_total = 0.0;
  Seconds wall_total = 0.0;
  double fabric_bytes_per_round = 0.0;

  std::vector<double> nvl_bytes(static_cast<std::size_t>(n));
  std::vector<net::FlowSpec> wave;
  for (int r : rounds) {
    Seconds t0 = sim_.now();
    std::fill(nvl_bytes.begin(), nvl_bytes.end(), 0.0);
    wave.clear();
    for (int i = 0; i < n; ++i) {
      int src = group.gpus[static_cast<std::size_t>(i)];
      int dst = group.gpus[static_cast<std::size_t>((i + r) % n)];
      auto la = fabric.gpu(src);
      auto lb = fabric.gpu(dst);
      if (la.host == lb.host) {
        nvl_bytes[static_cast<std::size_t>(i)] += static_cast<double>(per_pair);
        continue;
      }
      net::FlowSpec spec;
      spec.src_host = la.host;
      spec.dst_host = lb.host;
      spec.src_rail = la.rail;
      spec.dst_rail = lb.rail;
      // PXN: forward through the local GPU on the destination's rail so
      // the fabric flow is same-rail end to end. Mandatory on rail-only
      // fabrics where cross-rail NICs are unreachable.
      bool need_pxn = la.rail != lb.rail &&
                      (opts_.pxn || !fabric.fabric_reachable(src, dst));
      if (need_pxn) {
        nvl_bytes[static_cast<std::size_t>(i)] += static_cast<double>(per_pair);
        spec.src_rail = lb.rail;
      }
      spec.size = per_pair;
      spec.start = t0;
      spec.tag = next_tag_++;
      wave.push_back(spec);
    }
    int fabric_flows = static_cast<int>(wave.size());
    sim_.inject_batch(wave);
    sim_.run();
    drain_stalled(&res);
    Seconds fabric_dt = sim_.now() - t0;
    double max_nvl = 0.0;
    for (double b : nvl_bytes) max_nvl = std::max(max_nvl, b);
    Seconds nvl_dt = max_nvl * 8.0 / opts_.nvlink_bw;
    fabric_total += fabric_dt;
    nvlink_total += nvl_dt;
    // NVLink forwarding pipelines with the fabric transfer; the round is
    // gated by the slower of the two.
    wall_total += std::max(fabric_dt, nvl_dt);
    fabric_bytes_per_round += static_cast<double>(fabric_flows) * per_pair;
    sim_.recycle_finished();
  }

  const double scale = static_cast<double>(total_rounds) / static_cast<double>(rounds.size());
  res.rounds_simulated = static_cast<int>(rounds.size());
  res.duration = wall_total * scale;
  res.fabric_time = fabric_total * scale;
  res.nvlink_time = nvlink_total * scale;
  res.fabric_bytes = static_cast<Bytes>(fabric_bytes_per_round * scale);
  const double per_rank_bits = static_cast<double>(per_pair) * (n - 1) * 8.0;
  res.alg_bw = res.duration > 0 ? per_rank_bits / res.duration : 0.0;
  res.bus_bw = res.alg_bw * static_cast<double>(n - 1) / n;
  return res;
}

Seconds CollectiveRunner::ring_step(const CommGroup& group, Bytes chunk,
                                    int* fabric_edges, CollectiveResult* res) {
  const int n = group.size();
  const auto& fabric = sim_.fabric();
  Seconds t0 = sim_.now();
  std::vector<double> nvl_bytes(static_cast<std::size_t>(n), 0.0);
  std::vector<net::FlowSpec> wave;
  for (int i = 0; i < n; ++i) {
    int src = group.gpus[static_cast<std::size_t>(i)];
    int dst = group.gpus[static_cast<std::size_t>((i + 1) % n)];
    auto la = fabric.gpu(src);
    auto lb = fabric.gpu(dst);
    if (la.host == lb.host) {
      nvl_bytes[static_cast<std::size_t>(i)] += static_cast<double>(chunk);
      continue;
    }
    net::FlowSpec spec;
    spec.src_host = la.host;
    spec.dst_host = lb.host;
    spec.src_rail = la.rail;
    spec.dst_rail = lb.rail;
    if (la.rail != lb.rail && (opts_.pxn || !fabric.fabric_reachable(src, dst))) {
      nvl_bytes[static_cast<std::size_t>(i)] += static_cast<double>(chunk);
      spec.src_rail = lb.rail;
    }
    spec.size = chunk;
    spec.start = t0;
    spec.tag = next_tag_++;
    wave.push_back(spec);
  }
  if (fabric_edges != nullptr) *fabric_edges = static_cast<int>(wave.size());
  sim_.inject_batch(wave);
  sim_.run();
  drain_stalled(res);
  Seconds fabric_dt = sim_.now() - t0;
  double max_nvl = 0.0;
  for (double b : nvl_bytes) max_nvl = std::max(max_nvl, b);
  sim_.recycle_finished();
  return std::max(fabric_dt, max_nvl * 8.0 / opts_.nvlink_bw);
}

CollectiveResult CollectiveRunner::all_reduce(const CommGroup& group, Bytes size) {
  CollectiveResult res;
  const int n = group.size();
  if (n < 2 || size == 0) return res;
  TraceScope trace(*this, "all_reduce", &group, size);
  Bytes chunk = std::max<Bytes>(1, size / static_cast<Bytes>(n));
  int fabric_edges = 0;
  Seconds step = ring_step(group, chunk, &fabric_edges, &res);
  res.rounds_simulated = 1;
  res.duration = step * 2.0 * (n - 1);
  res.fabric_time = res.duration;
  res.fabric_bytes =
      static_cast<Bytes>(2.0 * (n - 1) * static_cast<double>(chunk) * fabric_edges);
  res.alg_bw = static_cast<double>(size) * 8.0 / res.duration;
  res.bus_bw = res.alg_bw * 2.0 * (n - 1) / n;
  return res;
}

CollectiveResult CollectiveRunner::all_reduce_hierarchical(const CommGroup& group,
                                                           Bytes size) {
  CollectiveResult res;
  const int n = group.size();
  if (n < 2 || size == 0) return res;
  TraceScope trace(*this, "all_reduce_hierarchical", &group, size);
  const auto& fabric = sim_.fabric();

  // Group ranks by host, preserving rail identity.
  std::map<topo::NodeId, std::vector<int>> by_host;
  for (int gpu : group.gpus) by_host[fabric.gpu(gpu).host].push_back(gpu);
  const int hosts = static_cast<int>(by_host.size());
  const int local = static_cast<int>(by_host.begin()->second.size());
  for (const auto& [host, gpus] : by_host) {
    if (static_cast<int>(gpus.size()) != local) return all_reduce(group, size);  // ragged
  }
  if (hosts < 2) return all_reduce(group, size);  // single host: plain ring on NVLink

  std::vector<topo::NodeId> host_order;
  for (const auto& [host, gpus] : by_host) host_order.push_back(host);

  // Phase 1: intra-host reduce-scatter on NVLink; every GPU ends up
  // owning size/local of the data.
  Seconds t_intra =
      local > 1 ? (local - 1.0) / local * static_cast<double>(size) * 8.0 / opts_.nvlink_bw
                : 0.0;

  // Phase 2: per-rail inter-host rings, all rails concurrently. Each
  // lane all-reduces its size/local shard over `hosts` peers: 2(H-1)
  // steps of shard/H. One step across all lanes is simulated and scaled.
  const Bytes shard = std::max<Bytes>(1, size / static_cast<Bytes>(local));
  const Bytes chunk = std::max<Bytes>(1, shard / static_cast<Bytes>(hosts));
  Seconds t0 = sim_.now();
  std::vector<net::FlowSpec> wave;
  for (int h = 0; h < hosts; ++h) {
    for (int lane = 0; lane < local; ++lane) {
      int src_gpu = by_host[host_order[static_cast<std::size_t>(h)]]
                           [static_cast<std::size_t>(lane)];
      int dst_gpu = by_host[host_order[static_cast<std::size_t>((h + 1) % hosts)]]
                           [static_cast<std::size_t>(lane)];
      auto la = fabric.gpu(src_gpu);
      auto lb = fabric.gpu(dst_gpu);
      net::FlowSpec spec;
      spec.src_host = la.host;
      spec.dst_host = lb.host;
      spec.src_rail = la.rail == lb.rail ? la.rail : lb.rail;  // rail-aligned
      spec.dst_rail = lb.rail;
      spec.size = chunk;
      spec.start = t0;
      spec.tag = next_tag_++;
      wave.push_back(spec);
    }
  }
  std::vector<net::FlowId> ids = sim_.inject_batch(wave);
  sim_.run_watch(ids);
  drain_stalled(&res);
  Seconds step = sim_.now() - t0;
  Seconds t_inter = step * 2.0 * (hosts - 1);
  sim_.recycle_finished();

  // Phase 3: intra-host all-gather mirrors phase 1.
  res.rounds_simulated = 1;
  res.nvlink_time = 2.0 * t_intra;
  res.fabric_time = t_inter;
  res.duration = 2.0 * t_intra + t_inter;
  res.fabric_bytes = static_cast<Bytes>(2.0 * (hosts - 1) * static_cast<double>(chunk) *
                                        hosts * local);
  res.alg_bw = static_cast<double>(size) * 8.0 / res.duration;
  res.bus_bw = res.alg_bw * 2.0 * (n - 1) / n;
  return res;
}

CollectiveResult CollectiveRunner::reduce_scatter(const CommGroup& group, Bytes size) {
  CollectiveResult res;
  const int n = group.size();
  if (n < 2 || size == 0) return res;
  TraceScope trace(*this, "reduce_scatter", &group, size);
  Bytes chunk = std::max<Bytes>(1, size / static_cast<Bytes>(n));
  int fabric_edges = 0;
  Seconds step = ring_step(group, chunk, &fabric_edges, &res);
  res.rounds_simulated = 1;
  res.duration = step * (n - 1);
  res.fabric_time = res.duration;
  res.fabric_bytes =
      static_cast<Bytes>(1.0 * (n - 1) * static_cast<double>(chunk) * fabric_edges);
  res.alg_bw = static_cast<double>(size) * 8.0 / res.duration;
  res.bus_bw = res.alg_bw * static_cast<double>(n - 1) / n;
  return res;
}

CollectiveResult CollectiveRunner::all_gather(const CommGroup& group, Bytes size) {
  // Traffic-wise the mirror image of ReduceScatter.
  return reduce_scatter(group, size);
}

CollectiveResult CollectiveRunner::send_recv(int src_gpu, int dst_gpu, Bytes size) {
  CollectiveResult res;
  if (size == 0 || src_gpu == dst_gpu) return res;
  TraceScope trace(*this, "send_recv", nullptr, size);
  const auto& fabric = sim_.fabric();
  auto la = fabric.gpu(src_gpu);
  auto lb = fabric.gpu(dst_gpu);
  Seconds t0 = sim_.now();
  if (la.host == lb.host) {
    res.nvlink_time = static_cast<double>(size) * 8.0 / opts_.nvlink_bw;
    res.duration = res.nvlink_time;
    res.alg_bw = opts_.nvlink_bw;
    res.bus_bw = res.alg_bw;
    return res;
  }
  net::FlowSpec spec;
  spec.src_host = la.host;
  spec.dst_host = lb.host;
  spec.src_rail = la.rail;
  spec.dst_rail = lb.rail;
  if (la.rail != lb.rail &&
      (opts_.pxn || !fabric.fabric_reachable(src_gpu, dst_gpu))) {
    res.nvlink_time = static_cast<double>(size) * 8.0 / opts_.nvlink_bw;
    spec.src_rail = lb.rail;
  }
  spec.size = size;
  spec.start = t0;
  spec.tag = next_tag_++;
  sim_.inject(spec);
  sim_.run();
  drain_stalled(&res);
  res.fabric_time = sim_.now() - t0;
  res.duration = std::max(res.fabric_time, res.nvlink_time);
  res.fabric_bytes = size;
  res.alg_bw = res.duration > 0 ? static_cast<double>(size) * 8.0 / res.duration : 0.0;
  res.bus_bw = res.alg_bw;
  res.rounds_simulated = 1;
  sim_.recycle_finished();
  return res;
}

}  // namespace astral::coll
