#include "parallel/placement.h"

#include <cassert>

namespace astral::parallel {

Placement Placement::packed(const topo::Fabric& fabric, int n) {
  assert(n <= fabric.gpu_count());
  (void)fabric;
  Placement p;
  p.gpus.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) p.gpus.push_back(g);
  return p;
}

Placement Placement::fragmented(const topo::Fabric& fabric, int n, int parts) {
  const auto& fp = fabric.params();
  assert(parts >= 1 && parts <= fp.pods);
  const int rails = fp.rails;
  const int hosts_needed = (n + rails - 1) / rails;
  assert((hosts_needed + parts - 1) / parts <= fp.blocks_per_pod * fp.hosts_per_block);
  (void)hosts_needed;

  Placement p;
  p.gpus.reserve(static_cast<std::size_t>(n));
  const int gpus_per_pod_slot = fp.blocks_per_pod * fp.hosts_per_block * rails;
  int host_cursor = 0;  // host index within the pod slice
  while (static_cast<int>(p.gpus.size()) < n) {
    for (int part = 0; part < parts && static_cast<int>(p.gpus.size()) < n; ++part) {
      int base = part * gpus_per_pod_slot + host_cursor * rails;
      for (int r = 0; r < rails && static_cast<int>(p.gpus.size()) < n; ++r) {
        p.gpus.push_back(base + r);
      }
    }
    ++host_cursor;
  }
  return p;
}

}  // namespace astral::parallel
