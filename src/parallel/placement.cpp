#include "parallel/placement.h"

#include <algorithm>
#include <cassert>

namespace astral::parallel {

Placement Placement::packed(const topo::Fabric& fabric, int n) {
  assert(n <= fabric.gpu_count());
  (void)fabric;
  Placement p;
  p.gpus.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) p.gpus.push_back(g);
  return p;
}

Placement Placement::fragmented(const topo::Fabric& fabric, int n, int parts) {
  const auto& fp = fabric.params();
  assert(parts >= 1 && parts <= fp.pods);
  const int rails = fp.rails;
  const int hosts_needed = (n + rails - 1) / rails;
  assert((hosts_needed + parts - 1) / parts <= fp.blocks_per_pod * fp.hosts_per_block);
  (void)hosts_needed;

  Placement p;
  p.gpus.reserve(static_cast<std::size_t>(n));
  const int gpus_per_pod_slot = fp.blocks_per_pod * fp.hosts_per_block * rails;
  int host_cursor = 0;  // host index within the pod slice
  while (static_cast<int>(p.gpus.size()) < n) {
    for (int part = 0; part < parts && static_cast<int>(p.gpus.size()) < n; ++part) {
      int base = part * gpus_per_pod_slot + host_cursor * rails;
      for (int r = 0; r < rails && static_cast<int>(p.gpus.size()) < n; ++r) {
        p.gpus.push_back(base + r);
      }
    }
    ++host_cursor;
  }
  return p;
}

const char* to_string(HostPolicy policy) {
  switch (policy) {
    case HostPolicy::InOrder: return "in-order";
    case HostPolicy::RailAligned: return "rail-aligned";
    case HostPolicy::Scattered: return "scattered";
    case HostPolicy::LocalityFirst: return "locality-first";
  }
  return "?";
}

namespace {

struct HostIndex {
  int pods = 0;
  int blocks = 0;           ///< blocks per pod.
  int hosts_per_block = 0;  ///< hosts per block.
  std::vector<char> free_hosts;

  int total() const { return pods * blocks * hosts_per_block; }
  int host_of(int pod, int block, int idx) const {
    return (pod * blocks + block) * hosts_per_block + idx;
  }
  bool is_free(int host) const {
    return free_hosts[static_cast<std::size_t>(host)] != 0;
  }
  void take(int host, std::vector<int>& out) {
    free_hosts[static_cast<std::size_t>(host)] = 0;
    out.push_back(host);
  }
  int free_in_block(int pod, int block) const {
    int n = 0;
    for (int h = 0; h < hosts_per_block; ++h) {
      n += is_free(host_of(pod, block, h)) ? 1 : 0;
    }
    return n;
  }
};

HostIndex make_index(const topo::Fabric& fabric, const std::vector<char>& free_hosts) {
  const auto& fp = fabric.params();
  HostIndex ix;
  ix.pods = fp.total_pods();
  ix.blocks = fp.blocks_per_pod;
  ix.hosts_per_block = fp.hosts_per_block;
  if (free_hosts.empty()) {
    ix.free_hosts.assign(static_cast<std::size_t>(ix.total()), 1);
  } else {
    assert(static_cast<int>(free_hosts.size()) == ix.total());
    ix.free_hosts = free_hosts;
  }
  return ix;
}

std::vector<int> place_in_order(HostIndex& ix, int n) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int h = 0; h < ix.total() && static_cast<int>(out.size()) < n; ++h) {
    if (ix.is_free(h)) ix.take(h, out);
  }
  return out;
}

std::vector<int> place_scattered(HostIndex& ix, int n) {
  // Visit (pod, block) slots round-robin, taking the lowest free host of
  // each slot per visit; a full sweep with no progress means we're out of
  // capacity.
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    bool progressed = false;
    for (int pod = 0; pod < ix.pods && static_cast<int>(out.size()) < n; ++pod) {
      for (int block = 0; block < ix.blocks && static_cast<int>(out.size()) < n;
           ++block) {
        for (int h = 0; h < ix.hosts_per_block; ++h) {
          int host = ix.host_of(pod, block, h);
          if (ix.is_free(host)) {
            ix.take(host, out);
            progressed = true;
            break;
          }
        }
      }
    }
    if (!progressed) break;
  }
  return out;
}

std::vector<int> place_locality_first(HostIndex& ix, int n) {
  // Best-fit over blocks: take the block with the smallest free count
  // that still covers the remaining demand (whole remainder in one block
  // when possible); otherwise drain the fullest block and recurse. Ties
  // break toward the lowest (pod, block) index, keeping the result
  // deterministic.
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    int need = n - static_cast<int>(out.size());
    int best_pod = -1, best_block = -1, best_free = 0;
    bool best_fits = false;
    for (int pod = 0; pod < ix.pods; ++pod) {
      for (int block = 0; block < ix.blocks; ++block) {
        int free_count = ix.free_in_block(pod, block);
        if (free_count == 0) continue;
        bool fits = free_count >= need;
        bool better;
        if (best_pod < 0) {
          better = true;
        } else if (fits != best_fits) {
          better = fits;  // a covering block beats any partial block
        } else if (fits) {
          better = free_count < best_free;  // tightest covering block
        } else {
          better = free_count > best_free;  // else the fullest block
        }
        if (better) {
          best_pod = pod;
          best_block = block;
          best_free = free_count;
          best_fits = fits;
        }
      }
    }
    if (best_pod < 0) break;
    int take = std::min(need, best_free);
    for (int h = 0; h < ix.hosts_per_block && take > 0; ++h) {
      int host = ix.host_of(best_pod, best_block, h);
      if (ix.is_free(host)) {
        ix.take(host, out);
        --take;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<int> place_hosts(const topo::Fabric& fabric, int n, HostPolicy policy,
                             const std::vector<char>& free_hosts) {
  if (n <= 0) return {};
  HostIndex ix = make_index(fabric, free_hosts);
  std::vector<int> out;
  switch (policy) {
    case HostPolicy::InOrder:
    case HostPolicy::RailAligned:
      // Rail-aligned packing and the legacy in-order acquisition coincide:
      // fabric host order is (pod, block, host), so first-fit fills blocks
      // contiguously and ring neighbours share rail ToRs.
      out = place_in_order(ix, n);
      break;
    case HostPolicy::Scattered:
      out = place_scattered(ix, n);
      break;
    case HostPolicy::LocalityFirst:
      out = place_locality_first(ix, n);
      break;
  }
  if (static_cast<int>(out.size()) < n) return {};
  return out;
}

}  // namespace astral::parallel
