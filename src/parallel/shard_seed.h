// Topology-derived shard seeds for the pod-sharded max-min solver.
//
// The placement machinery in this directory packs jobs into pods because
// Astral keeps collective traffic pod-local whenever the scheduler can
// manage it (§2.1); the same locality makes per-pod solver shards the
// common case. link_locality_domains() turns that structure into a
// per-link domain table: the solver's union-find treats links in the
// same domain as freely mergeable, while boundary links (domain -1, the
// core tier and anything crossing pods) are relaxed out of the shard
// graph and re-checked by the sequential reconciliation pass — they only
// force shards to merge when they actually saturate.
//
// The table is advisory: FluidSim falls back to exact connected-
// component sharding when no domains are installed, so feeding it a
// coarser or finer domain map changes parallelism, never results.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/fabric.h"

namespace astral::parallel {

/// Per-link locality domain, indexed by topo::LinkId. Links whose both
/// endpoints sit inside one pod (hosts, ToRs, Aggs) get that pod's id;
/// links touching the core tier or crossing pods get -1 (boundary).
std::vector<std::int32_t> link_locality_domains(const topo::Fabric& fabric);

}  // namespace astral::parallel
