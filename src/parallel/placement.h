// Job placement policies (§2's flexibility attribute): packed placement
// fills blocks/pods contiguously; fragmented placement spreads a job
// across pods, the situation Fig. 2 quantifies.
//
// Host-granularity policies (place_hosts) serve the fleet scheduler: a
// job asks for n whole hosts out of whatever the fabric has free, and
// the policy decides the failure-domain shape of the allocation —
// rail-aligned packing (ring neighbours share ToRs, smallest blast
// surface per link but a whole block rides on one Agg group), scattering
// across pods (one switch death touches few of the job's hosts, at the
// cost of cross-pod ring hops), or locality-first best-fit (fewest
// blocks that still fit, the bin-packing middle ground). "Rail-only"
// and "99 Problems But FLOPS Ain't One" (PAPERS.md) ground the spectrum.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/fabric.h"

namespace astral::parallel {

/// Maps job ranks to global GPU indices of a fabric.
struct Placement {
  std::vector<int> gpus;  ///< job rank -> global GPU index.

  int size() const { return static_cast<int>(gpus.size()); }

  /// Contiguous allocation starting at GPU 0 (fills hosts, then blocks,
  /// then pods). Requires n <= fabric.gpu_count().
  static Placement packed(const topo::Fabric& fabric, int n);

  /// Spreads n GPUs across `parts` pods: whole hosts are allocated
  /// round-robin over pods (GPU granularity stays host-aligned, as
  /// schedulers allocate whole servers). Requires parts <= pods and the
  /// per-pod slice to fit.
  static Placement fragmented(const topo::Fabric& fabric, int n, int parts);
};

/// Whole-host allocation policy for the fleet scheduler (and the single
/// job runtime's host-acquisition seam).
enum class HostPolicy : std::uint8_t {
  /// Legacy ClusterRuntime behaviour: the first n free hosts in fabric
  /// index order. On an empty fabric this is exactly hosts 0..n-1.
  InOrder,
  /// Packed first-fit: fills blocks contiguously so ring neighbours share
  /// rail ToRs (the paper's same-rail alignment). Equals InOrder on an
  /// empty fabric; under fragmentation it still prefers contiguous runs.
  RailAligned,
  /// Round-robin over pods, then blocks: each visit takes the lowest free
  /// host of the next (pod, block), minimizing hosts lost to any single
  /// switch/block failure at the cost of longer ring paths.
  Scattered,
  /// Best-fit by block: repeatedly picks the block whose free-host count
  /// is the smallest that still covers the remaining demand (whole job
  /// in one block when possible), falling back to the fullest block.
  /// Minimizes the number of blocks, then pods, the job spans.
  LocalityFirst,
};

const char* to_string(HostPolicy policy);

/// Picks n hosts (indices into fabric.topo().hosts() order) honouring the
/// free mask (`free[i]` nonzero = host i available; an empty mask means
/// every host is free). Returns an empty vector when the demand does not
/// fit. Deterministic: equal inputs give equal placements.
std::vector<int> place_hosts(const topo::Fabric& fabric, int n,
                             HostPolicy policy,
                             const std::vector<char>& free_hosts = {});

}  // namespace astral::parallel
