// Job placement policies (§2's flexibility attribute): packed placement
// fills blocks/pods contiguously; fragmented placement spreads a job
// across pods, the situation Fig. 2 quantifies.
#pragma once

#include <vector>

#include "topo/fabric.h"

namespace astral::parallel {

/// Maps job ranks to global GPU indices of a fabric.
struct Placement {
  std::vector<int> gpus;  ///< job rank -> global GPU index.

  int size() const { return static_cast<int>(gpus.size()); }

  /// Contiguous allocation starting at GPU 0 (fills hosts, then blocks,
  /// then pods). Requires n <= fabric.gpu_count().
  static Placement packed(const topo::Fabric& fabric, int n);

  /// Spreads n GPUs across `parts` pods: whole hosts are allocated
  /// round-robin over pods (GPU granularity stays host-aligned, as
  /// schedulers allocate whole servers). Requires parts <= pods and the
  /// per-pod slice to fit.
  static Placement fragmented(const topo::Fabric& fabric, int n, int parts);
};

}  // namespace astral::parallel
