#include "parallel/groups.h"

#include <cassert>

namespace astral::parallel {

ParallelGroups build_groups(const Placement& placement, const ParallelismConfig& cfg) {
  assert(cfg.valid());
  assert(placement.size() == cfg.world());
  auto gpu_of = [&](int tp_idx, int dp_idx, int pp_idx) {
    int rank = tp_idx + cfg.tp * (dp_idx + cfg.dp * pp_idx);
    return placement.gpus[static_cast<std::size_t>(rank)];
  };

  ParallelGroups g;
  for (int p = 0; p < cfg.pp; ++p) {
    for (int d = 0; d < cfg.dp; ++d) {
      coll::CommGroup grp;
      for (int t = 0; t < cfg.tp; ++t) grp.gpus.push_back(gpu_of(t, d, p));
      g.tp.push_back(std::move(grp));
    }
  }
  for (int p = 0; p < cfg.pp; ++p) {
    for (int t = 0; t < cfg.tp; ++t) {
      coll::CommGroup grp;
      for (int d = 0; d < cfg.dp; ++d) grp.gpus.push_back(gpu_of(t, d, p));
      g.dp.push_back(std::move(grp));
    }
  }
  for (int d = 0; d < cfg.dp; ++d) {
    for (int t = 0; t < cfg.tp; ++t) {
      coll::CommGroup grp;
      for (int p = 0; p < cfg.pp; ++p) grp.gpus.push_back(gpu_of(t, d, p));
      g.pp.push_back(std::move(grp));
    }
  }
  // Expert parallelism: consecutive dp indices share an expert group.
  for (int p = 0; p < cfg.pp; ++p) {
    for (int t = 0; t < cfg.tp; ++t) {
      for (int d0 = 0; d0 < cfg.dp; d0 += cfg.ep) {
        coll::CommGroup grp;
        for (int e = 0; e < cfg.ep; ++e) grp.gpus.push_back(gpu_of(t, d0 + e, p));
        g.ep.push_back(std::move(grp));
      }
    }
  }
  return g;
}

}  // namespace astral::parallel
