// 4-D parallelism (TP x DP x PP, with EP slicing the DP dimension) and
// the communication groups each dimension induces, following the
// Megatron-LM rank layout: tensor-parallel ranks are consecutive, then
// data-parallel, then pipeline stages.
#pragma once

#include <vector>

#include "coll/comm_group.h"
#include "parallel/placement.h"

namespace astral::parallel {

struct ParallelismConfig {
  int tp = 8;  ///< Tensor parallel degree (inside one host ideally).
  int dp = 1;  ///< Data parallel degree.
  int pp = 1;  ///< Pipeline parallel degree.
  int ep = 1;  ///< Expert parallel degree; must divide dp.

  int world() const { return tp * dp * pp; }
  bool valid() const { return tp >= 1 && dp >= 1 && pp >= 1 && ep >= 1 && dp % ep == 0; }
};

/// All communication groups of a job. Each group lists global GPU
/// indices (resolved through the placement).
struct ParallelGroups {
  std::vector<coll::CommGroup> tp;  ///< dp*pp groups of size tp.
  std::vector<coll::CommGroup> dp;  ///< tp*pp groups of size dp.
  std::vector<coll::CommGroup> pp;  ///< tp*dp chains of size pp.
  std::vector<coll::CommGroup> ep;  ///< All-to-all groups of size ep*tp? No:
                                    ///< tp*pp*(dp/ep) groups of size ep.
};

/// Builds the groups for a placement. Placement size must equal
/// cfg.world(). Rank layout: rank = tp_idx + tp * (dp_idx + dp * pp_idx).
ParallelGroups build_groups(const Placement& placement, const ParallelismConfig& cfg);

}  // namespace astral::parallel
