#include "parallel/shard_seed.h"

namespace astral::parallel {

std::vector<std::int32_t> link_locality_domains(const topo::Fabric& fabric) {
  const topo::Topology& topo = fabric.topo();
  std::vector<std::int32_t> domains(topo.link_count(), -1);
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const topo::Link& link = topo.link(static_cast<topo::LinkId>(l));
    const topo::Node& src = topo.node(link.src);
    const topo::Node& dst = topo.node(link.dst);
    // Core nodes carry a home-DC pod marker, not a real pod: always
    // boundary. Everything else is pod-local iff the pods match.
    if (src.kind == topo::NodeKind::Core || dst.kind == topo::NodeKind::Core) {
      continue;
    }
    if (src.pod >= 0 && src.pod == dst.pod) {
      domains[l] = src.pod;
    }
  }
  return domains;
}

}  // namespace astral::parallel
