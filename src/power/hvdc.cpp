#include "power/hvdc.h"

#include <algorithm>
#include <cmath>

namespace astral::power {

double chain_efficiency(ChainKind kind) {
  switch (kind) {
    // Grid AC -> UPS (AC/DC, DC/AC) -> PSU (AC/DC): three lossy stages.
    case ChainKind::AcUps: return 0.88;
    // Grid AC -> rectifier -> DC bus -> PSU (DC/DC): battery charges
    // directly from the bus.
    case ChainKind::Hvdc: return 0.962;
  }
  return 1.0;
}

PowerUnit::PowerUnit(PowerUnitConfig cfg)
    : cfg_(cfg), battery_j_(cfg.battery_capacity_j * 0.8) {}

double PowerUnit::unit_budget() const { return cfg_.racks * cfg_.rack_tdp_watts; }

Allocation PowerUnit::allocate(std::span<const double> demand_watts) const {
  Allocation out;
  out.granted_watts.resize(demand_watts.size());
  const double per_rack_cap = cfg_.rack_tdp_watts * (1.0 + cfg_.elastic_headroom);

  // First pass: clamp to the per-rack elastic cap.
  double total = 0.0;
  for (std::size_t i = 0; i < demand_watts.size(); ++i) {
    double g = std::min(demand_watts[i], per_rack_cap);
    if (g < demand_watts[i]) out.clipped = true;
    out.granted_watts[i] = g;
    total += g;
  }
  // Second pass: if the aggregate exceeds the unit budget, shave the
  // elastic portion (above TDP) proportionally — racks at or below TDP
  // are always honored.
  double budget = unit_budget();
  if (total > budget) {
    double elastic_total = 0.0;
    for (std::size_t i = 0; i < out.granted_watts.size(); ++i) {
      elastic_total += std::max(0.0, out.granted_watts[i] - cfg_.rack_tdp_watts);
    }
    double excess = total - budget;
    double shave = elastic_total > 0 ? std::min(1.0, excess / elastic_total) : 0.0;
    for (auto& g : out.granted_watts) {
      double elastic = std::max(0.0, g - cfg_.rack_tdp_watts);
      g -= elastic * shave;
    }
    out.clipped = true;
    total = budget + std::max(0.0, excess - elastic_total);
  }
  out.total_granted = 0.0;
  for (double g : out.granted_watts) out.total_granted += g;
  return out;
}

double PowerUnit::step(core::Seconds dt, double load_watts) {
  const double eff = chain_efficiency(cfg_.kind);
  const double input_needed = load_watts / eff;
  if (cfg_.kind == ChainKind::AcUps) {
    // Double-conversion UPS: fluctuations pass straight to the grid; the
    // battery floats and its usable capacity is churned by the pulses
    // (the paper's 20-30% fluctuation observation).
    double churn = std::abs(input_needed - (avg_load_ < 0 ? input_needed : avg_load_));
    battery_j_ = std::clamp(battery_j_ - churn * dt * 0.25,
                            cfg_.battery_capacity_j * 0.6, cfg_.battery_capacity_j);
    avg_load_ = input_needed;
    return input_needed;
  }
  // HVDC: track a slow EWMA of the load as the constant grid target; the
  // DC-bus battery absorbs the difference within its power rating.
  if (avg_load_ < 0) avg_load_ = input_needed;
  avg_load_ += (input_needed - avg_load_) * std::min(1.0, dt / 60.0);
  double grid = avg_load_;
  double delta = input_needed - grid;  // >0: battery discharges
  double max_delta = cfg_.battery_power_w;
  delta = std::clamp(delta, -max_delta, max_delta);
  double new_soc_j = battery_j_ - delta * dt;
  if (new_soc_j < 0.0 || new_soc_j > cfg_.battery_capacity_j) {
    // Battery can't absorb it; the grid takes the remainder.
    grid = input_needed;
  } else {
    battery_j_ = new_soc_j;
    grid = input_needed - delta;
  }
  return grid;
}

double grid_stability(PowerUnit& unit, std::span<const double> load_watts,
                      core::Seconds dt) {
  // Skip the warm-up transient: the metric is about steady operation.
  const std::size_t warmup = load_watts.size() / 5;
  double peak = 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < load_watts.size(); ++i) {
    double grid = unit.step(dt, load_watts[i]);
    if (i < warmup) continue;
    peak = std::max(peak, grid);
    sum += grid;
    ++counted;
  }
  double avg = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
  return avg > 0 ? peak / avg : 0.0;
}

}  // namespace astral::power
