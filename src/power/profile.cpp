#include "power/profile.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/math.h"

namespace astral::power {

namespace {
double noisy(double watts, double noise, core::Rng& rng) {
  return std::max(0.0, watts * (1.0 + rng.normal(0.0, noise)));
}
}  // namespace

std::vector<PowerSample> training_power_trace(const GpuPowerModel& gpu,
                                              const TrainIterationShape& shape,
                                              int iterations, core::Seconds dt,
                                              core::Rng& rng) {
  struct Segment {
    core::Seconds len;
    double factor;
  };
  const Segment segments[] = {
      {shape.fwd_compute, gpu.compute_peak_factor},
      {shape.fwd_comm, gpu.comm_factor},
      {shape.bwd_compute, gpu.compute_peak_factor},
      {shape.bwd_comm, gpu.comm_factor},
      {shape.optimizer, 0.75},
  };
  core::Seconds iter_len = 0;
  for (const auto& s : segments) iter_len += s.len;

  std::vector<PowerSample> trace;
  for (core::Seconds t = 0; t < iterations * iter_len; t += dt) {
    core::Seconds phase = std::fmod(t, iter_len);
    double factor = segments[0].factor;
    for (const auto& s : segments) {
      if (phase < s.len) {
        factor = s.factor;
        break;
      }
      phase -= s.len;
    }
    trace.push_back({t, noisy(gpu.tdp_watts * factor, gpu.noise, rng)});
  }
  return trace;
}

std::vector<PowerSample> inference_power_trace(const GpuPowerModel& gpu,
                                               core::Seconds prefill, core::Seconds decode,
                                               int requests, core::Seconds dt,
                                               core::Rng& rng) {
  const core::Seconds cycle = prefill + decode;
  std::vector<PowerSample> trace;
  for (core::Seconds t = 0; t < requests * cycle; t += dt) {
    core::Seconds phase = std::fmod(t, cycle);
    double factor = phase < prefill ? gpu.compute_peak_factor : gpu.decode_factor;
    trace.push_back({t, noisy(gpu.tdp_watts * factor, gpu.noise, rng)});
  }
  return trace;
}

std::vector<PowerSample> diurnal_fleet_trace(const GpuPowerModel& gpu, int gpus,
                                             double train_fill, core::Seconds dt,
                                             core::Rng& rng) {
  // Inference demand: a smooth daily curve peaking mid-afternoon and
  // bottoming out around 3am; the 22:00-08:00 window carries the dip the
  // paper describes.
  auto inference_load = [](double hour) {
    // 0..1 utilization of the fleet by inference.
    double phase = (hour - 14.0) / 24.0 * 2.0 * std::numbers::pi;
    double base = 0.55 + 0.35 * std::cos(phase);
    return std::clamp(base, 0.15, 0.95);
  };
  std::vector<PowerSample> trace;
  const double day = 24.0 * 3600.0;
  for (core::Seconds t = 0; t < day; t += dt) {
    double hour = t / 3600.0;
    double infer = inference_load(hour);
    // Nighttime training backfill toward a constant-power contract.
    double headroom = 0.95 - infer;
    double train = train_fill * std::max(0.0, headroom);
    double util = infer + train;
    double per_gpu = gpu.idle_watts + (gpu.tdp_watts * 0.85 - gpu.idle_watts) * util;
    trace.push_back({t, noisy(per_gpu * gpus, gpu.noise / 4.0, rng)});
  }
  return trace;
}

TraceStats trace_stats(const std::vector<PowerSample>& trace) {
  TraceStats s;
  if (trace.empty()) return s;
  std::vector<double> w;
  w.reserve(trace.size());
  for (const auto& p : trace) w.push_back(p.watts);
  s.peak_watts = *std::max_element(w.begin(), w.end());
  s.min_watts = *std::min_element(w.begin(), w.end());
  s.mean_watts = core::mean(w);
  s.stddev_watts = core::stddev(w);
  return s;
}

}  // namespace astral::power
