#include "power/pue.h"

namespace astral::power {

FacilityConfig FacilityConfig::traditional(double capacity_w) {
  FacilityConfig f;
  f.chain = ChainKind::AcUps;
  f.cooling = cooling::CoolingConfig::traditional_air(capacity_w);
  f.misc_fraction = 0.03;
  return f;
}

FacilityConfig FacilityConfig::astral(double capacity_w) {
  FacilityConfig f;
  f.chain = ChainKind::Hvdc;
  f.cooling = cooling::CoolingConfig::astral_integrated(capacity_w);
  f.misc_fraction = 0.02;
  return f;
}

double compute_pue(const FacilityConfig& cfg, double it_watts) {
  if (it_watts <= 0) return 1.0;
  cooling::IntegratedCooling plant(cfg.cooling);
  double cooling_w = plant.cooling_power(it_watts);
  double misc_w = it_watts * cfg.misc_fraction;
  double facility = (it_watts + cooling_w + misc_w) / chain_efficiency(cfg.chain);
  return facility / it_watts;
}

double blended_pue(const FacilityConfig& traditional, const FacilityConfig& astral,
                   double migrated, double it_watts) {
  double a = compute_pue(astral, it_watts * migrated);
  double t = compute_pue(traditional, it_watts * (1.0 - migrated));
  return migrated * a + (1.0 - migrated) * t;
}

}  // namespace astral::power
