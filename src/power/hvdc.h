// Distributed HVDC power system vs traditional AC-UPS (§2.2, Fig. 4).
//
// The chain model captures the three HVDC benefits the paper claims:
//  1. efficiency — one rectification stage and a directly-coupled battery
//     vs the UPS double conversion;
//  2. stability — the battery rides on the DC bus, so pulsed LLM load is
//     absorbed and grid draw stays near-constant (AC-UPS batteries see
//     20-30% capacity fluctuation instead);
//  3. elasticity — a unit feeds a row of racks at aggregate TDP, and any
//     single rack may draw up to +30% above its TDP from shared headroom.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"

namespace astral::power {

enum class ChainKind : std::uint8_t { AcUps, Hvdc };

/// End-to-end electrical conversion efficiency of a chain.
double chain_efficiency(ChainKind kind);

struct PowerUnitConfig {
  ChainKind kind = ChainKind::Hvdc;
  int racks = 8;
  double rack_tdp_watts = 40e3;       ///< Per-rack thermal design power.
  double elastic_headroom = 0.30;     ///< Single-rack burst above TDP.
  double battery_capacity_j = 400e6;  ///< Energy buffer.
  double battery_power_w = 500e3;     ///< Max charge/discharge rate.
};

struct Allocation {
  std::vector<double> granted_watts;  ///< Per rack.
  double total_granted = 0.0;
  bool clipped = false;  ///< Any rack got less than requested.
};

/// One distributed power unit feeding a row of racks (plus its share of
/// the cooling system).
class PowerUnit {
 public:
  explicit PowerUnit(PowerUnitConfig cfg);

  const PowerUnitConfig& config() const { return cfg_; }
  /// Aggregate budget: racks * rack TDP (the supply "remains constant
  /// (approximately their TDP)").
  double unit_budget() const;

  /// Grants rack demands subject to (a) per-rack cap of TDP * (1 +
  /// headroom) and (b) the aggregate unit budget; excess demand is
  /// reduced proportionally from the racks exceeding TDP.
  Allocation allocate(std::span<const double> demand_watts) const;

  /// Advances the battery-buffered supply by dt under `load_watts` of IT
  /// load. Returns grid draw in watts. HVDC buffers through the DC-bus
  /// battery toward constant grid draw; AC-UPS passes fluctuations
  /// through (its battery only backs up outages) and loses more in
  /// conversion.
  double step(core::Seconds dt, double load_watts);

  /// Battery state of charge in [0, 1].
  double soc() const { return battery_j_ / cfg_.battery_capacity_j; }

 private:
  PowerUnitConfig cfg_;
  double battery_j_;
  double avg_load_ = -1.0;  ///< EWMA of load, the constant-draw target.
};

/// Peak-to-average grid-draw ratio of a chain under a pulsed load trace —
/// the stability metric (closer to 1 is better).
double grid_stability(PowerUnit& unit, std::span<const double> load_watts,
                      core::Seconds dt);

}  // namespace astral::power
