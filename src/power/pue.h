// Power Usage Effectiveness accounting (Fig. 6): facility draw =
// (IT + cooling + misc) / distribution-chain efficiency; PUE is that
// divided by IT power. Combines the HVDC/AC-UPS chain models with the
// air-liquid cooling plant.
#pragma once

#include "cooling/integrated.h"
#include "power/hvdc.h"

namespace astral::power {

struct FacilityConfig {
  ChainKind chain = ChainKind::Hvdc;
  cooling::CoolingConfig cooling;
  double misc_fraction = 0.025;  ///< Lighting, offices, security.

  /// Pre-Astral baseline: AC-UPS distribution, traditional air cooling.
  static FacilityConfig traditional(double capacity_w);
  /// Astral: distributed HVDC, air-liquid integrated cooling.
  static FacilityConfig astral(double capacity_w);
};

/// PUE at the given IT load.
double compute_pue(const FacilityConfig& cfg, double it_watts);

/// Capacity-weighted PUE of a fleet that is partially migrated: a
/// `migrated` fraction of IT load runs on the Astral facility, the rest
/// on the traditional one (the gradual 18-month rollout of Fig. 6).
double blended_pue(const FacilityConfig& traditional, const FacilityConfig& astral,
                   double migrated, double it_watts);

}  // namespace astral::power
