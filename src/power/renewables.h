// Green supplemental energy (§2.2): roof-mounted solar and flatland wind
// stations feeding the HVDC bus, and the carbon accounting behind the
// paper's "22% renewable, 778k tons CO2 avoided" 2024 report.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/units.h"

namespace astral::power {

/// Solar output over a day: a clear-sky bell between sunrise and sunset
/// scaled by the installation's peak watts.
double solar_output(double hour_of_day, double peak_watts);

/// Wind output: slowly-varying around a site capacity factor;
/// deterministic for a given Rng seed.
class WindFarm {
 public:
  WindFarm(double peak_watts, double capacity_factor, std::uint64_t seed = 11);
  /// Advances the weather state and returns current output.
  double step(core::Seconds dt);

 private:
  double peak_;
  double cf_;
  double state_;
  core::Rng rng_;
};

struct EnergyMix {
  double grid_kwh = 0.0;
  double solar_kwh = 0.0;
  double wind_kwh = 0.0;

  double total_kwh() const { return grid_kwh + solar_kwh + wind_kwh; }
  double renewable_fraction() const {
    double t = total_kwh();
    return t > 0 ? (solar_kwh + wind_kwh) / t : 0.0;
  }
  /// Avoided CO2 vs an all-grid supply, using a grid intensity in
  /// kg CO2 per kWh (China grid average ~0.58).
  double avoided_co2_tons(double kg_per_kwh = 0.58) const {
    return (solar_kwh + wind_kwh) * kg_per_kwh / 1000.0;
  }
};

/// Simulates one year of a datacenter drawing `avg_load_watts` with the
/// given renewable installations; returns the mix.
EnergyMix simulate_year(double avg_load_watts, double solar_peak_watts,
                        double wind_peak_watts, double wind_capacity_factor,
                        std::uint64_t seed = 11);

}  // namespace astral::power
