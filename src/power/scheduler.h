// Constant-power job scheduling (§5 "power consumption patterns and our
// power allocation strategy"): the fleet signed a constant-power utility
// contract, inference demand is tidal, so training jobs are scheduled
// into the nightly trough (incentivized by cheap night rentals). The
// scheduler fills each hour's spare GPUs with training, subject to the
// contract ceiling and a training-backlog budget.
#pragma once

#include <vector>

#include "power/profile.h"

namespace astral::power {

struct HourPlan {
  int hour = 0;
  int inference_gpus = 0;
  int training_gpus = 0;
  double power_watts = 0.0;  ///< Fleet draw for this hour.
};

struct DaySchedule {
  std::vector<HourPlan> hours;  ///< 24 entries.
  double peak_watts = 0.0;
  double mean_watts = 0.0;
  double training_gpu_hours = 0.0;
  /// Peak-to-mean of the scheduled draw; 1.0 = perfectly flat, the
  /// contract ideal.
  double flatness() const { return mean_watts > 0 ? peak_watts / mean_watts : 0.0; }
};

/// Greedy constant-power scheduling. `inference_demand` holds 24 hourly
/// fleet fractions required by inference (from the tidal pattern);
/// `training_backlog_gpu_hours` is how much queued training exists. The
/// contract line is set to the peak inference hour (inference must always
/// fit); training backfills each hour up to that line, cheapest (deepest
/// trough) hours first, until the backlog runs out.
DaySchedule schedule_day(const std::vector<double>& inference_demand, int fleet_gpus,
                         const GpuPowerModel& gpu, double training_backlog_gpu_hours);

/// The observed hourly inference fractions behind Fig. 16 (peak at
/// mid-afternoon, trough around 3am).
std::vector<double> tidal_inference_demand();

}  // namespace astral::power
