// GPU power-usage profiles (§5, Figs. 15-16): phase-resolved power within
// training/inference iterations (peaks at/above TDP during compute,
// troughs during communication and decode) and the diurnal tidal pattern
// of a production fleet.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/units.h"

namespace astral::power {

struct PowerSample {
  core::Seconds t = 0.0;
  double watts = 0.0;
};

struct GpuPowerModel {
  double tdp_watts = 400.0;
  double idle_watts = 70.0;
  /// Peak draw during dense compute relative to TDP (>1: the paper's
  /// "peak power can exceed TDP" observation).
  double compute_peak_factor = 1.08;
  /// Draw during communication phases relative to TDP.
  double comm_factor = 0.55;
  /// Draw during decode (memory-bound) relative to TDP.
  double decode_factor = 0.45;
  /// Relative sample noise (deterministic via the provided Rng).
  double noise = 0.015;
};

/// Phase split of one training iteration.
struct TrainIterationShape {
  core::Seconds fwd_compute = 0.12;
  core::Seconds fwd_comm = 0.03;
  core::Seconds bwd_compute = 0.22;
  core::Seconds bwd_comm = 0.05;
  core::Seconds optimizer = 0.04;
};

/// Per-phase power trace over `iterations` training iterations, sampled
/// every `dt` seconds (Fig. 15a).
std::vector<PowerSample> training_power_trace(const GpuPowerModel& gpu,
                                              const TrainIterationShape& shape,
                                              int iterations, core::Seconds dt,
                                              core::Rng& rng);

/// Inference trace alternating prefill (at TDP) and decode (well below)
/// phases (Fig. 15b).
std::vector<PowerSample> inference_power_trace(const GpuPowerModel& gpu,
                                               core::Seconds prefill, core::Seconds decode,
                                               int requests, core::Seconds dt,
                                               core::Rng& rng);

/// 24-hour fleet trace with the tidal inference pattern: high daytime
/// load declining between 22:00 and 08:00 (Fig. 16). `train_fill` is the
/// fraction of the nighttime dip backfilled with training jobs (the
/// cheap-night-rental scheduling policy); 0 shows the raw tide.
std::vector<PowerSample> diurnal_fleet_trace(const GpuPowerModel& gpu, int gpus,
                                             double train_fill, core::Seconds dt,
                                             core::Rng& rng);

/// Peak-to-mean and variability summary of a trace.
struct TraceStats {
  double peak_watts = 0.0;
  double mean_watts = 0.0;
  double min_watts = 0.0;
  double stddev_watts = 0.0;
};
TraceStats trace_stats(const std::vector<PowerSample>& trace);

}  // namespace astral::power
