#include "power/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace astral::power {

std::vector<double> tidal_inference_demand() {
  std::vector<double> demand(24);
  for (int h = 0; h < 24; ++h) {
    double phase = (h - 14.0) / 24.0 * 2.0 * std::numbers::pi;
    demand[static_cast<std::size_t>(h)] = std::clamp(0.55 + 0.35 * std::cos(phase), 0.15, 0.95);
  }
  return demand;
}

DaySchedule schedule_day(const std::vector<double>& inference_demand, int fleet_gpus,
                         const GpuPowerModel& gpu, double training_backlog_gpu_hours) {
  DaySchedule plan;
  plan.hours.resize(inference_demand.size());

  // Per-GPU draw for busy vs idle GPUs (hour-scale averages).
  const double busy_w = gpu.tdp_watts * 0.85;
  const double idle_w = gpu.idle_watts;

  // Contract ceiling: the peak inference hour must fit with no training.
  double peak_frac = 0.0;
  for (double d : inference_demand) peak_frac = std::max(peak_frac, d);
  const int ceiling_gpus = static_cast<int>(std::round(peak_frac * fleet_gpus));

  // Fill the deepest troughs first (they are also the cheapest rentals).
  std::vector<int> order(inference_demand.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return inference_demand[static_cast<std::size_t>(a)] <
           inference_demand[static_cast<std::size_t>(b)];
  });

  double backlog = training_backlog_gpu_hours;
  for (int h : order) {
    auto& slot = plan.hours[static_cast<std::size_t>(h)];
    slot.hour = h;
    slot.inference_gpus = static_cast<int>(
        std::round(inference_demand[static_cast<std::size_t>(h)] * fleet_gpus));
    int spare = std::max(0, ceiling_gpus - slot.inference_gpus);
    int train = static_cast<int>(std::min<double>(spare, backlog));
    slot.training_gpus = train;
    backlog -= train;
    int busy = slot.inference_gpus + slot.training_gpus;
    slot.power_watts = busy * busy_w + (fleet_gpus - busy) * idle_w;
  }

  double sum = 0.0;
  for (const auto& slot : plan.hours) {
    plan.peak_watts = std::max(plan.peak_watts, slot.power_watts);
    sum += slot.power_watts;
    plan.training_gpu_hours += slot.training_gpus;
  }
  plan.mean_watts = sum / static_cast<double>(plan.hours.size());
  return plan;
}

}  // namespace astral::power
