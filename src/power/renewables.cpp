#include "power/renewables.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace astral::power {

double solar_output(double hour_of_day, double peak_watts) {
  // Daylight window 6:00-18:00, sinusoidal irradiance.
  if (hour_of_day < 6.0 || hour_of_day > 18.0) return 0.0;
  double phase = (hour_of_day - 6.0) / 12.0 * std::numbers::pi;
  return peak_watts * std::sin(phase);
}

WindFarm::WindFarm(double peak_watts, double capacity_factor, std::uint64_t seed)
    : peak_(peak_watts), cf_(capacity_factor), state_(capacity_factor), rng_(seed) {}

double WindFarm::step(core::Seconds dt) {
  // Mean-reverting random walk of the site-wide wind level.
  double tau = 6.0 * 3600.0;  // weather timescale
  double pull = (cf_ - state_) * std::min(1.0, dt / tau);
  double gust = rng_.normal(0.0, 0.08) * std::sqrt(std::min(1.0, dt / tau));
  state_ = std::clamp(state_ + pull + gust, 0.0, 1.0);
  return peak_ * state_;
}

EnergyMix simulate_year(double avg_load_watts, double solar_peak_watts,
                        double wind_peak_watts, double wind_capacity_factor,
                        std::uint64_t seed) {
  EnergyMix mix;
  WindFarm wind(wind_peak_watts, wind_capacity_factor, seed);
  const core::Seconds dt = 900.0;  // 15-minute buckets
  const double days = 365.0;
  for (core::Seconds t = 0; t < days * 24 * 3600; t += dt) {
    double hour = std::fmod(t / 3600.0, 24.0);
    double solar = solar_output(hour, solar_peak_watts);
    double w = wind.step(dt);
    double renewable = std::min(avg_load_watts, solar + w);
    // Split the renewable credit proportionally between sources.
    double total_green = solar + w;
    double solar_used = total_green > 0 ? renewable * solar / total_green : 0.0;
    double wind_used = renewable - solar_used;
    double grid = avg_load_watts - renewable;
    double to_kwh = dt / 3600.0 / 1000.0;
    mix.solar_kwh += solar_used * to_kwh;
    mix.wind_kwh += wind_used * to_kwh;
    mix.grid_kwh += grid * to_kwh;
  }
  return mix;
}

}  // namespace astral::power
