#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

namespace astral::obs {

namespace {

/// Fields unset in `primary` inherit from `fallback`.
TraceKeys merge_keys(const TraceKeys& primary, const TraceKeys& fallback) {
  TraceKeys out = primary;
  if (out.job < 0) out.job = fallback.job;
  if (out.group < 0) out.group = fallback.group;
  if (out.collective < 0) out.collective = fallback.collective;
  if (out.flow < 0) out.flow = fallback.flow;
  if (out.qp < 0) out.qp = fallback.qp;
  if (out.link < 0) out.link = fallback.link;
  if (out.fault < 0) out.fault = fallback.fault;
  return out;
}

core::Json keys_to_args(const TraceKeys& k, const char* detail, double value,
                        bool with_value) {
  core::Json::Object args;
  if (k.job >= 0) args["job"] = core::Json(k.job);
  if (k.group >= 0) args["group"] = core::Json(k.group);
  if (k.collective >= 0) args["collective"] = core::Json(k.collective);
  if (k.flow >= 0) args["flow"] = core::Json(k.flow);
  if (k.qp >= 0) args["qp"] = core::Json(k.qp);
  if (k.link >= 0) args["link"] = core::Json(k.link);
  if (k.fault >= 0) args["fault"] = core::Json(k.fault);
  if (detail != nullptr) args["detail"] = core::Json(detail);
  if (with_value) args["value"] = core::Json(value);
  if (args.empty()) return core::Json();
  return core::Json(std::move(args));
}

std::int64_t usec_of(core::Seconds t) {
  // Round to whole microseconds; Chrome's ts unit. llround keeps
  // 0.999999... cases stable across platforms.
  return static_cast<std::int64_t>(std::llround(t * 1e6));
}

}  // namespace

const char* to_string(Track t) {
  switch (t) {
    case Track::Workload: return "workload";
    case Track::Collective: return "collective";
    case Track::Flow: return "flow";
    case Track::Link: return "link";
    case Track::Fault: return "fault";
    case Track::Telemetry: return "telemetry";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ChromeTraceBuilder

void ChromeTraceBuilder::process_name(int pid, std::string_view name) {
  core::Json::Object ev;
  ev["ph"] = core::Json("M");
  ev["pid"] = core::Json(std::int64_t{pid});
  ev["tid"] = core::Json(std::int64_t{0});
  ev["name"] = core::Json("process_name");
  core::Json::Object args;
  args["name"] = core::Json(name);
  ev["args"] = core::Json(std::move(args));
  metadata_.push_back(core::Json(std::move(ev)));
}

void ChromeTraceBuilder::thread_name(int pid, int tid, std::string_view name) {
  core::Json::Object ev;
  ev["ph"] = core::Json("M");
  ev["pid"] = core::Json(std::int64_t{pid});
  ev["tid"] = core::Json(std::int64_t{tid});
  ev["name"] = core::Json("thread_name");
  core::Json::Object args;
  args["name"] = core::Json(name);
  ev["args"] = core::Json(std::move(args));
  metadata_.push_back(core::Json(std::move(ev)));
}

void ChromeTraceBuilder::complete(int pid, int tid, std::string_view name,
                                  core::Seconds start, core::Seconds duration,
                                  core::Json args) {
  core::Json::Object ev;
  ev["ph"] = core::Json("X");
  ev["pid"] = core::Json(std::int64_t{pid});
  ev["tid"] = core::Json(std::int64_t{tid});
  ev["name"] = core::Json(name);
  ev["ts"] = core::Json(usec_of(start));
  ev["dur"] = core::Json(usec_of(duration));
  if (!args.is_null()) ev["args"] = std::move(args);
  events_.push_back(core::Json(std::move(ev)));
}

void ChromeTraceBuilder::instant(int pid, int tid, std::string_view name,
                                 core::Seconds t, core::Json args) {
  core::Json::Object ev;
  ev["ph"] = core::Json("i");
  ev["s"] = core::Json("g");
  ev["pid"] = core::Json(std::int64_t{pid});
  ev["tid"] = core::Json(std::int64_t{tid});
  ev["name"] = core::Json(name);
  ev["ts"] = core::Json(usec_of(t));
  if (!args.is_null()) ev["args"] = std::move(args);
  events_.push_back(core::Json(std::move(ev)));
}

void ChromeTraceBuilder::counter(int pid, std::string_view name,
                                 std::string_view series, core::Seconds t,
                                 double value) {
  core::Json::Object ev;
  ev["ph"] = core::Json("C");
  ev["pid"] = core::Json(std::int64_t{pid});
  ev["tid"] = core::Json(std::int64_t{0});
  ev["name"] = core::Json(name);
  ev["ts"] = core::Json(usec_of(t));
  core::Json::Object args;
  args[std::string(series)] = core::Json(value);
  ev["args"] = core::Json(std::move(args));
  events_.push_back(core::Json(std::move(ev)));
}

core::Json ChromeTraceBuilder::build() const {
  std::vector<core::Json> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const core::Json& a, const core::Json& b) {
                     return std::make_tuple(a["pid"].as_int(), a["tid"].as_int(),
                                            a["ts"].as_int(),
                                            std::string_view(a["name"].as_string())) <
                            std::make_tuple(b["pid"].as_int(), b["tid"].as_int(),
                                            b["ts"].as_int(),
                                            std::string_view(b["name"].as_string()));
                   });
  core::Json::Array all;
  all.reserve(metadata_.size() + sorted.size());
  for (const auto& m : metadata_) all.push_back(m);
  for (auto& e : sorted) all.push_back(std::move(e));
  core::Json::Object root;
  root["traceEvents"] = core::Json(std::move(all));
  root["displayTimeUnit"] = core::Json("ms");
  return core::Json(std::move(root));
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(TracerConfig config) : config_(config) {
  for (auto& ring : rings_) ring.slots.reserve(config_.ring_capacity);
}

TraceKeys Tracer::set_ambient(TraceKeys keys) {
  TraceKeys prev = ambient_;
  ambient_ = keys;
  return prev;
}

TraceKeys Tracer::push_ambient(TraceKeys keys) {
  return set_ambient(merge_keys(keys, ambient_));
}

void Tracer::record(Track track, TraceEvent ev) {
  ev.keys = merge_keys(ev.keys, ambient_);
  Ring& ring = rings_[static_cast<std::size_t>(track)];
  if (ring.slots.size() < config_.ring_capacity) {
    ring.slots.push_back(ev);
  } else {
    ring.slots[ring.head] = ev;
  }
  ring.head = (ring.head + 1) % config_.ring_capacity;
  ring.total++;
}

void Tracer::span(Track track, const char* name, core::Seconds start,
                  core::Seconds duration, TraceKeys keys, double value,
                  const char* detail) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::Span;
  ev.track = track;
  ev.name = name;
  ev.detail = detail;
  ev.start = start;
  ev.duration = duration;
  ev.value = value;
  ev.keys = keys;
  record(track, ev);
}

void Tracer::instant(Track track, const char* name, core::Seconds t,
                     TraceKeys keys, const char* detail) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::Instant;
  ev.track = track;
  ev.name = name;
  ev.detail = detail;
  ev.start = t;
  ev.keys = keys;
  record(track, ev);
}

void Tracer::counter(Track track, const char* name, core::Seconds t,
                     double value, TraceKeys keys) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::Counter;
  ev.track = track;
  ev.name = name;
  ev.start = t;
  ev.value = value;
  ev.keys = keys;
  record(track, ev);
}

std::vector<TraceEvent> Tracer::events(Track track) const {
  const Ring& ring = rings_[static_cast<std::size_t>(track)];
  std::vector<TraceEvent> out;
  out.reserve(ring.slots.size());
  if (ring.slots.size() < config_.ring_capacity) {
    out = ring.slots;  // Not yet wrapped: insertion order is time order.
  } else {
    out.insert(out.end(), ring.slots.begin() + static_cast<std::ptrdiff_t>(ring.head),
               ring.slots.end());
    out.insert(out.end(), ring.slots.begin(),
               ring.slots.begin() + static_cast<std::ptrdiff_t>(ring.head));
  }
  return out;
}

std::uint64_t Tracer::recorded(Track track) const {
  return rings_[static_cast<std::size_t>(track)].total;
}

std::uint64_t Tracer::dropped(Track track) const {
  const Ring& ring = rings_[static_cast<std::size_t>(track)];
  return ring.total - ring.slots.size();
}

void Tracer::append_chrome_trace(ChromeTraceBuilder& builder, int pid) const {
  builder.process_name(pid, "astral");
  for (int t = 0; t < kTrackCount; ++t) {
    Track track = static_cast<Track>(t);
    int tid = t + 1;  // tid 0 is reserved for counter series.
    builder.thread_name(pid, tid, to_string(track));
    for (const TraceEvent& ev : events(track)) {
      switch (ev.phase) {
        case TraceEvent::Phase::Span:
          builder.complete(pid, tid, ev.name, ev.start, ev.duration,
                           keys_to_args(ev.keys, ev.detail, ev.value,
                                        ev.value != 0.0));
          break;
        case TraceEvent::Phase::Instant:
          builder.instant(pid, tid, ev.name, ev.start,
                          keys_to_args(ev.keys, ev.detail, 0.0, false));
          break;
        case TraceEvent::Phase::Counter:
          if (ev.keys.link >= 0) {
            // Per-link series: the link id becomes part of the counter
            // name so Perfetto draws one counter track per link.
            char name[64];
            std::snprintf(name, sizeof name, "link%lld.%s",
                          static_cast<long long>(ev.keys.link), ev.name);
            builder.counter(pid, name, ev.name, ev.start, ev.value);
          } else {
            builder.counter(pid, ev.name, ev.name, ev.start, ev.value);
          }
          break;
      }
    }
  }
}

core::Json Tracer::to_chrome_trace() const {
  ChromeTraceBuilder builder;
  append_chrome_trace(builder);
  return builder.build();
}

}  // namespace astral::obs
