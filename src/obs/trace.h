// Cross-layer flight recorder: typed span/instant/counter events carrying
// the paper's correlation keys (job → comm group → collective → flow/QP →
// link, plus fault id) into per-track ring buffers, exported as one
// Chrome/Perfetto trace-event JSON where tracks = layers.
//
// Astral §3.2 links monitoring records across layers by shared keys so an
// operator can walk job → comm group → QP → 5-tuple → path → hops in one
// query. The Tracer reproduces that chain for the simulator itself:
// ClusterRuntime stamps the ambient job key, CollectiveRunner stamps the
// ambient group/collective keys, and FluidSim events inherit them — so a
// flow span in Perfetto carries the collective and job that produced it
// without FluidSim knowing either exists.
//
// Cost contract: every hook site is `if (tracer_) tracer_->...`, one
// predictable branch when disabled (instrumented objects default to a
// null sink). When enabled, recording is one ring-buffer slot write —
// event names/details are static strings (const char*), so no allocation
// per event; rings overwrite oldest and count drops.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/json.h"
#include "core/units.h"

namespace astral::obs {

/// One Perfetto track per simulated layer. Order is the display order
/// (top of the trace = the workload, bottom = faults).
enum class Track : std::uint8_t {
  Workload = 0,    ///< Iterations, compute/comm phases (ClusterRuntime).
  Collective = 1,  ///< Collective operations (CollectiveRunner).
  Flow = 2,        ///< Individual fabric flows (FluidSim).
  Link = 3,        ///< Per-link utilization counters (FluidSim).
  Fault = 4,       ///< Injection / detection / mitigation (ClusterRuntime).
  Telemetry = 5,   ///< Monitoring-plane degradation (TelemetryFaultModel).
};
constexpr int kTrackCount = 6;

const char* to_string(Track t);

/// The shared correlation keys from the paper's cross-layer schema.
/// -1 = unset; unset fields inherit the Tracer's ambient keys at record
/// time, which is how lower layers pick up job/collective context.
struct TraceKeys {
  std::int64_t job = -1;
  std::int64_t group = -1;       ///< Communication group.
  std::int64_t collective = -1;  ///< Collective op instance.
  std::int64_t flow = -1;        ///< Fabric flow ≙ QP (one QP per flow).
  std::int64_t qp = -1;          ///< Transport tag when distinct from flow.
  std::int64_t link = -1;
  std::int64_t fault = -1;
};

/// One recorded event. Fixed-size, no owned memory: `name` and `detail`
/// must point at string literals / static storage (the recording hot path
/// must not allocate).
struct TraceEvent {
  enum class Phase : std::uint8_t { Span, Instant, Counter };

  Phase phase = Phase::Instant;
  Track track = Track::Workload;
  const char* name = "";
  const char* detail = nullptr;  ///< Optional static annotation (e.g. cause).
  core::Seconds start = 0.0;     ///< Span start / instant time / sample time.
  core::Seconds duration = 0.0;  ///< Spans only.
  double value = 0.0;            ///< Counter value, or span payload (bytes...).
  TraceKeys keys;
};

struct TracerConfig {
  /// Per-track ring capacity; oldest events are overwritten past this.
  std::size_t ring_capacity = std::size_t{1} << 14;
};

/// Assembles Chrome trace-event JSON ({"traceEvents": [...]}). Shared by
/// the Tracer export and seer::Timeline so forecast and measured
/// timelines land in one Perfetto view as separate processes.
class ChromeTraceBuilder {
 public:
  /// Names a process / thread track (ph "M" metadata events).
  void process_name(int pid, std::string_view name);
  void thread_name(int pid, int tid, std::string_view name);

  /// Complete span (ph "X"); ts/dur are emitted in microseconds.
  void complete(int pid, int tid, std::string_view name, core::Seconds start,
                core::Seconds duration, core::Json args = core::Json());
  /// Global instant (ph "i", scope "g" so Perfetto draws a full-height line).
  void instant(int pid, int tid, std::string_view name, core::Seconds t,
               core::Json args = core::Json());
  /// Counter sample (ph "C"); `series` is the key inside args.
  void counter(int pid, std::string_view name, std::string_view series,
               core::Seconds t, double value);

  std::size_t event_count() const { return events_.size(); }

  /// {"traceEvents": [...]} with metadata first, then events sorted by
  /// (pid, tid, ts, name) — byte-stable across runs for golden diffs.
  core::Json build() const;

 private:
  std::vector<core::Json> metadata_;
  std::vector<core::Json> events_;
};

/// The flight recorder. Not thread-safe (the simulator is single-threaded).
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  /// Ambient keys: set fields are merged into every subsequently recorded
  /// event whose own field is unset. Returns the previous value so callers
  /// can save/restore around a scope.
  TraceKeys set_ambient(TraceKeys keys);
  /// Like set_ambient, but fields unset in `keys` inherit the current
  /// ambient — nested scopes (job → collective) stack instead of replace.
  TraceKeys push_ambient(TraceKeys keys);
  const TraceKeys& ambient() const { return ambient_; }

  void span(Track track, const char* name, core::Seconds start,
            core::Seconds duration, TraceKeys keys = {}, double value = 0.0,
            const char* detail = nullptr);
  void instant(Track track, const char* name, core::Seconds t,
               TraceKeys keys = {}, const char* detail = nullptr);
  void counter(Track track, const char* name, core::Seconds t, double value,
               TraceKeys keys = {});

  /// Events currently retained for a track, oldest first.
  std::vector<TraceEvent> events(Track track) const;
  /// Total recorded (including overwritten) and dropped-by-overwrite counts.
  std::uint64_t recorded(Track track) const;
  std::uint64_t dropped(Track track) const;

  /// Appends this tracer's tracks to `builder` under process `pid`
  /// (one thread per Track, named after the layer).
  void append_chrome_trace(ChromeTraceBuilder& builder, int pid = 1) const;

  /// Convenience: a standalone {"traceEvents": [...]} document.
  core::Json to_chrome_trace() const;

 private:
  struct Ring {
    std::vector<TraceEvent> slots;
    std::size_t head = 0;        ///< Next write position.
    std::uint64_t total = 0;     ///< Lifetime recorded count.
  };

  void record(Track track, TraceEvent ev);

  TracerConfig config_;
  TraceKeys ambient_;
  std::array<Ring, kTrackCount> rings_;
};

/// RAII ambient-key scope: merges `keys` into the tracer's ambient set on
/// construction, restores the previous ambient on destruction. Null-safe.
class AmbientScope {
 public:
  AmbientScope(Tracer* tracer, TraceKeys keys) : tracer_(tracer) {
    if (tracer_) prev_ = tracer_->push_ambient(keys);
  }
  ~AmbientScope() {
    if (tracer_) tracer_->set_ambient(prev_);
  }
  AmbientScope(const AmbientScope&) = delete;
  AmbientScope& operator=(const AmbientScope&) = delete;

 private:
  Tracer* tracer_;
  TraceKeys prev_;
};

}  // namespace astral::obs
