// Run-wide metrics registry: named counters, gauges and HDR-style
// histograms (log-bucketed, bounded relative error) for the simulation
// stack itself. Astral's §3 pillar is full-stack monitoring of the
// *trained* system; obs::Metrics is the same idea turned inward — the
// simulator publishes its own health (solver-step latency, flows
// completed/aborted/rerouted, mitigation counts) so campaigns are
// measurable rather than opaque.
//
// Snapshots are deterministic: names are kept in sorted order
// (std::map) and serialization goes through core::Json, whose key order
// and number formatting are stable — snapshots diff cleanly as goldens.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace astral::obs {

/// HDR-style histogram: base-2 log buckets with kSubBuckets linear
/// sub-buckets per octave, so any recorded value lands in a bucket whose
/// width is at most 1/kSubBuckets of its magnitude (≤ ~3% relative error
/// on reported percentiles). Fixed storage, no allocation after
/// construction; negative and zero values land in a dedicated underflow
/// bucket.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;  ///< Linear steps per octave.
  static constexpr int kMinExponent = -32;  ///< ~2e-10: below → underflow.
  static constexpr int kMaxExponent = 64;   ///< ~1.8e19: above → clamped.

  Histogram();

  void record(double value);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Value at percentile `p` in [0, 100]: the representative (bucket
  /// midpoint) of the bucket containing the p-th ranked sample, clamped
  /// to the exact observed [min, max].
  double percentile(double p) const;

  /// {count, min, max, mean, p50, p90, p99} — the snapshot schema.
  core::Json to_json() const;

 private:
  std::vector<std::uint32_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The registry. Lookups are by name; hot paths should cache the
/// returned Histogram* / use `add` sparingly (one map lookup per call).
class Metrics {
 public:
  /// Increments a counter (creating it at zero).
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  /// Sets a gauge to the latest value.
  void set_gauge(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Returns the named histogram, creating it empty. The reference is
  /// stable (std::map nodes don't move) — hot paths cache it.
  Histogram& histogram(std::string_view name);
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Deterministic snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, min, max, mean, p50, p90, p99}}}.
  core::Json to_json() const;

  /// The same snapshot as an aligned ASCII table (core::Table).
  std::string to_table() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace astral::obs
