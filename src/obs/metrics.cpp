#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/table.h"

namespace astral::obs {

namespace {

constexpr int kOctaves = Histogram::kMaxExponent - Histogram::kMinExponent;
// Bucket 0 is the underflow bucket (value <= 0 or below 2^kMinExponent).
constexpr int kBucketCount = 1 + kOctaves * Histogram::kSubBuckets;

/// Maps a value to its bucket index. Within octave e (2^e <= v < 2^{e+1})
/// the fraction (v/2^e - 1) in [0,1) picks one of kSubBuckets linear
/// sub-buckets.
int bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  exp -= 1;                           // now v = (2*frac) * 2^exp, 2*frac in [1, 2)
  if (exp < Histogram::kMinExponent) return 0;
  if (exp >= Histogram::kMaxExponent) exp = Histogram::kMaxExponent - 1;
  int sub = static_cast<int>((frac * 2.0 - 1.0) * Histogram::kSubBuckets);
  sub = std::clamp(sub, 0, Histogram::kSubBuckets - 1);
  return 1 + (exp - Histogram::kMinExponent) * Histogram::kSubBuckets + sub;
}

/// Midpoint of bucket `idx`'s value range — the representative returned
/// by percentile queries.
double bucket_midpoint(int idx) {
  if (idx == 0) return 0.0;
  int off = idx - 1;
  int exp = Histogram::kMinExponent + off / Histogram::kSubBuckets;
  int sub = off % Histogram::kSubBuckets;
  double lo = std::ldexp(1.0 + static_cast<double>(sub) / Histogram::kSubBuckets, exp);
  double hi = std::ldexp(1.0 + static_cast<double>(sub + 1) / Histogram::kSubBuckets, exp);
  return 0.5 * (lo + hi);
}

}  // namespace

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

void Histogram::record(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  count_++;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly; only interior percentiles go
  // through the bucket approximation.
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank of the target sample, 1-based ceil.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // The underflow bucket (zero/negative values) has no meaningful
      // midpoint; its representative is the observed minimum.
      if (i == 0) return min_;
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

core::Json Histogram::to_json() const {
  core::Json::Object o;
  o["count"] = core::Json(static_cast<std::int64_t>(count_));
  o["min"] = core::Json(min());
  o["max"] = core::Json(max());
  o["mean"] = core::Json(mean());
  o["p50"] = core::Json(percentile(50));
  o["p90"] = core::Json(percentile(90));
  o["p99"] = core::Json(percentile(99));
  return core::Json(std::move(o));
}

void Metrics::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Metrics::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double Metrics::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& Metrics::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  return it->second;
}

const Histogram* Metrics::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

core::Json Metrics::to_json() const {
  core::Json::Object counters;
  for (const auto& [name, v] : counters_) {
    counters[name] = core::Json(static_cast<std::int64_t>(v));
  }
  core::Json::Object gauges;
  for (const auto& [name, v] : gauges_) {
    gauges[name] = core::Json(v);
  }
  core::Json::Object hists;
  for (const auto& [name, h] : histograms_) {
    hists[name] = h.to_json();
  }
  core::Json::Object root;
  root["counters"] = core::Json(std::move(counters));
  root["gauges"] = core::Json(std::move(gauges));
  root["histograms"] = core::Json(std::move(hists));
  return core::Json(std::move(root));
}

std::string Metrics::to_table() const {
  auto fmt = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  std::string out;
  if (!counters_.empty()) {
    core::Table t({"counter", "value"});
    for (const auto& [name, v] : counters_) {
      t.add_row({name, std::to_string(v)});
    }
    out += t.str();
  }
  if (!gauges_.empty()) {
    core::Table t({"gauge", "value"});
    for (const auto& [name, v] : gauges_) {
      t.add_row({name, fmt(v)});
    }
    out += t.str();
  }
  if (!histograms_.empty()) {
    core::Table t({"histogram", "count", "min", "p50", "p90", "p99", "max", "mean"});
    for (const auto& [name, h] : histograms_) {
      t.add_row({name, std::to_string(h.count()), fmt(h.min()), fmt(h.percentile(50)),
             fmt(h.percentile(90)), fmt(h.percentile(99)), fmt(h.max()), fmt(h.mean())});
    }
    out += t.str();
  }
  return out;
}

}  // namespace astral::obs
