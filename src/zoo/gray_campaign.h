// Zoo-wide gray-failure availability campaign: every FabricStyle member
// runs the same seeded schedules across three fault profiles — crisp
// (the classic taxonomy sample + mid-transfer ToR death), gray (flapping
// link, partial capacity degrade, slow-NIC straggler; all silent), and
// mixed (gray flapping under a crisp ToR death) — once with the damped
// WCMP adaptive-routing controller and once with the binary
// isolate-and-reroute baseline. The report carries per-cell goodput,
// mitigation-event counts, oscillation totals, and EWMA precursor alarm
// lead times, plus the acceptance self-gates:
//
//  * WCMP + flap damping beats binary isolation on goodput under the
//    flapping (gray) profile on every zoo member.
//  * The stream analyzer's EWMA alarms fire after injection and before
//    run end (positive lead time) for >= 90% of gray faults.
//  * Damped WCMP mitigation never oscillates (RunOutcome::oscillations
//    == 0 on every gray/mixed cell).
//  * With gray routing off, a clean run is identical to a clean run
//    under Wcmp mode that never engages (the do-no-harm gate).
//
// examples/gray_failure_campaign prints the table and exits nonzero when
// any gate fails; CI runs it as the gray-failure-campaign job.
#pragma once

#include <string>
#include <vector>

#include "monitor/cluster_runtime.h"
#include "monitor/stream_analyzer.h"
#include "topo/fabric.h"

namespace astral::zoo {

/// Which fault population a campaign cell injects.
enum class GrayProfile : std::uint8_t {
  Crisp,  ///< Taxonomy sample + mid-transfer ToR death (no gray).
  Gray,   ///< FlappingLink + PartialDegrade + SlowNic, all silent.
  Mixed,  ///< Gray flapping underneath a crisp ToR death.
};
inline constexpr GrayProfile kAllGrayProfiles[] = {
    GrayProfile::Crisp, GrayProfile::Gray, GrayProfile::Mixed};
const char* to_string(GrayProfile p);

struct GrayCampaignConfig {
  // Fabric scale shared by every zoo member (16 hosts / 32 GPUs —
  // small enough that 5 styles x 3 profiles x 2 controllers stays
  // CI-sized).
  int rails = 2;
  int hosts_per_block = 4;
  int blocks_per_pod = 2;
  int pods = 2;
  bool dual_tor = true;
  double clos_oversub = 4.0;

  /// Seeded runs per (style, profile, controller) cell.
  int runs = 2;
  monitor::JobConfig job;
  /// WCMP controller knobs for the adaptive cells (mode/damping are
  /// forced to Wcmp/on per cell).
  monitor::GrayRoutingConfig wcmp;
  /// Push cost of one binary cordon/restore event (the churn the
  /// damped controller amortizes away).
  monitor::GrayRoutingConfig binary;
  /// Gray precursor alarms (enabled is forced on for campaign runs).
  monitor::GrayAlarmConfig alarm;
  std::uint64_t seed = 7;

  GrayCampaignConfig();
};

/// One (style, profile) cell, aggregated over the seeded runs.
struct GrayCell {
  topo::FabricStyle style = topo::FabricStyle::AstralSameRail;
  GrayProfile profile = GrayProfile::Crisp;

  double goodput_wcmp = 0.0;    ///< Mean goodput, damped WCMP controller.
  double goodput_binary = 0.0;  ///< Mean goodput, binary isolate baseline.
  int derates = 0;              ///< WCMP derate pushes across runs.
  int isolates = 0;             ///< Binary cordon/restore events across runs.
  int osc_wcmp = 0;             ///< Oscillations under damped WCMP.
  int osc_binary = 0;           ///< Oscillations under binary isolation.
  std::uint64_t alarms = 0;     ///< Precursor alarms raised (WCMP runs).
  int gray_faults = 0;          ///< Gray faults injected across runs.
  int gray_alarmed = 0;         ///< ...that an alarm followed with lead > 0.
  double mean_lead = 0.0;       ///< Mean alarm lead time (s) over alarmed.
};

struct GrayCampaignReport {
  std::vector<GrayCell> cells;  ///< Style-major, profile-minor order.
  std::string table;            ///< Rendered campaign table.
  std::vector<std::string> gate_failures;  ///< Empty when all gates hold.
  bool ok() const { return gate_failures.empty(); }
};

/// The FabricParams a zoo member runs with in this campaign. RailOnly
/// keeps its pods but the job is placed intra-pod (it has no inter-pod
/// fabric to cross).
topo::FabricParams gray_style_params(const GrayCampaignConfig& cfg,
                                     topo::FabricStyle style);

/// The seeded fault schedule of one run; `gray_indexes` receives the
/// schedule positions of the gray members (for lead-time accounting).
monitor::FaultSchedule gray_schedule(monitor::ClusterRuntime& runtime,
                                     GrayProfile profile, int iterations,
                                     std::vector<int>* gray_indexes);

/// Runs every profile over every style under both controllers and
/// assembles the gated report.
GrayCampaignReport run_gray_campaign(const GrayCampaignConfig& cfg = {});

}  // namespace astral::zoo
