// Topology-zoo shootout: runs every FabricStyle member through the same
// adversarial campaigns and emits one ranked cost/performance/availability
// table (the ROADMAP "topology zoo + adversarial routing scenarios" item).
//
// Campaigns, all seeded and deterministic:
//  * Polarization storm — an adversary greedily picks UDP source ports to
//    maximize ECMP collisions on a rail-0 intra-pod permutation plus a
//    rail-1 cross-pod permutation; the EcmpController must defuse the
//    storm to within its documented rebalance_bound() while not hurting
//    Jain's fairness or post-mitigation max link utilization.
//  * Mixed-collective incast — a rail-0 many-to-one incast runs against a
//    rail-1 permutation; the interference ratio (background makespan
//    alone / under incast) measures rail isolation.
//  * Failure blast radius — a FaultSchedule of ToR death, trunk-optics
//    degrade, and Agg death is applied per style with flows in flight;
//    stranded fractions and fault slowdowns roll up into availability.
//
// The cost model charges capacity-proportional optics (long-haul links at
// a multiplier), plus a flat unit cost per switch; cost per good-GPU-hour
// divides by availability-weighted GPU count. examples/topology_shootout
// prints the table and exits nonzero when any self-gate fails;
// tests/topo_shootout_golden_test.cpp byte-compares the table.
#pragma once

#include <string>
#include <vector>

#include "core/units.h"
#include "monitor/faults.h"
#include "topo/fabric.h"

namespace astral::zoo {

struct ShootoutConfig {
  // Fabric scale shared by every zoo member (64 hosts / 256 GPUs).
  int rails = 4;
  int hosts_per_block = 8;
  int blocks_per_pod = 4;
  int pods = 2;
  bool dual_tor = true;
  /// The Clos row runs oversubscribed (the paper's Fig. 2 comparison);
  /// every other style runs non-blocking.
  double clos_oversub = 4.0;

  // Campaign knobs.
  core::Bytes flow_bytes = 16ull << 20;  ///< Per-flow transfer size.
  int storm_port_candidates = 8;  ///< Adversary's ports tried per flow.
  int rebalance_rounds = 8;       ///< Controller convergence budget.
  std::uint64_t seed = 1;

  // Cost model, relative units.
  double cost_per_gbps = 0.5;       ///< Optics, per duplex Gbps.
  double cost_per_switch = 600.0;   ///< Flat per switch chassis.
  double longhaul_multiplier = 10.0;  ///< Cross-datacenter optics.
};

/// One ranked row of the comparison table.
struct StyleResult {
  topo::FabricStyle style = topo::FabricStyle::AstralSameRail;
  double oversub = 1.0;
  int switches = 0;

  // Polarization storm.
  int storm_load_before = 0;   ///< Max ECMP link load, adversarial ports.
  int storm_load_after = 0;    ///< After controller convergence.
  int storm_bound = 0;         ///< EcmpController::rebalance_bound.
  double fairness_before = 0.0;  ///< Jain's index over link loads.
  double fairness_after = 0.0;
  double util_before = 0.0;  ///< Max link peak demand/capacity, unmitigated.
  double util_after = 0.0;   ///< Same, post-mitigation.
  double storm_goodput_gbps = 0.0;  ///< Mitigated storm goodput.

  // Mixed-collective incast.
  double incast_ratio = 0.0;  ///< Background makespan alone / under incast.

  // Failure blast radius.
  double blast_fraction = 0.0;  ///< Mean stranded-flow fraction per fault.
  double availability = 0.0;    ///< Mean (1 - stranded) * min(1, T0/Tf).

  // Cost.
  double fabric_cost = 0.0;            ///< Optics + switches, rel. units.
  double cost_per_good_gpu_hour = 0.0;  ///< Cost / (GPUs * availability).

  double score = 0.0;  ///< Composite of perf / availability / cost.
  int rank = 0;        ///< 1 = best composite score.
};

struct ShootoutReport {
  std::vector<StyleResult> rows;  ///< Ranked best-first.
  std::string table;              ///< Rendered ranked table (golden-locked).
  std::vector<std::string> gate_failures;  ///< Empty when all gates hold.
  bool ok() const { return gate_failures.empty(); }
};

/// The FabricParams a zoo member runs with in this shootout.
topo::FabricParams style_params(const ShootoutConfig& cfg, topo::FabricStyle style);

/// The per-style fault scenarios the blast-radius sweep injects: ToR
/// death (switch scope), trunk-optics degrade (fail-slow), Agg death.
monitor::FaultSchedule blast_schedule(const topo::Fabric& fabric);

/// Runs every campaign over every style and assembles the ranked report.
ShootoutReport run_shootout(const ShootoutConfig& cfg = {});

}  // namespace astral::zoo
