#include "zoo/shootout.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/math.h"
#include "core/table.h"
#include "net/controller.h"
#include "net/fluid_sim.h"

namespace astral::zoo {

namespace {

using net::EcmpController;
using net::FlowSpec;
using net::FluidSim;
using topo::FabricStyle;

// Rail-0 intra-pod cross-block permutation (routable on every style,
// rail-only included) plus a rail-1 cross-pod permutation on styles with
// inter-pod connectivity.
std::vector<FlowSpec> storm_specs(const topo::Fabric& f, core::Bytes bytes) {
  const auto& p = f.params();
  std::vector<FlowSpec> specs;
  std::uint64_t tag = 0;
  for (int pod = 0; pod < p.total_pods(); ++pod) {
    for (int b = 0; b < p.blocks_per_pod; ++b) {
      for (int h = 0; h < p.hosts_per_block; ++h) {
        FlowSpec s;
        s.src_host = f.host_at(pod, b, h);
        s.dst_host = f.host_at(pod, (b + 1) % p.blocks_per_pod, h);
        s.src_rail = 0;
        s.dst_rail = 0;
        s.size = bytes;
        s.tag = tag++;
        specs.push_back(s);
      }
    }
  }
  if (p.style != FabricStyle::RailOnly && p.total_pods() > 1) {
    for (int pod = 0; pod < p.total_pods(); ++pod) {
      for (int b = 0; b < p.blocks_per_pod; ++b) {
        for (int h = 0; h < p.hosts_per_block; ++h) {
          FlowSpec s;
          s.src_host = f.host_at(pod, b, h);
          s.dst_host = f.host_at((pod + 1) % p.total_pods(), b, h);
          s.src_rail = 1;
          s.dst_rail = 1;
          s.size = bytes;
          s.tag = tag++;
          specs.push_back(s);
        }
      }
    }
  }
  return specs;
}

// Rail-1 intra-pod permutation: the background collective of the incast
// campaign (and the probe for rail isolation).
std::vector<FlowSpec> background_specs(const topo::Fabric& f, core::Bytes bytes) {
  const auto& p = f.params();
  std::vector<FlowSpec> specs;
  std::uint64_t tag = 1u << 20;
  int rail = p.rails > 1 ? 1 : 0;
  for (int pod = 0; pod < p.total_pods(); ++pod) {
    for (int b = 0; b < p.blocks_per_pod; ++b) {
      for (int h = 0; h < p.hosts_per_block; ++h) {
        FlowSpec s;
        s.src_host = f.host_at(pod, b, h);
        s.dst_host = f.host_at(pod, (b + 1) % p.blocks_per_pod, h);
        s.src_rail = rail;
        s.dst_rail = rail;
        s.size = bytes;
        s.tag = tag++;
        specs.push_back(s);
      }
    }
  }
  return specs;
}

// Rail-0 many-to-one: every host of pod 0's other blocks fires at the
// same-index host of block 0.
std::vector<FlowSpec> incast_specs(const topo::Fabric& f, core::Bytes bytes) {
  const auto& p = f.params();
  std::vector<FlowSpec> specs;
  std::uint64_t tag = 2u << 20;
  for (int b = 1; b < p.blocks_per_pod; ++b) {
    for (int h = 0; h < p.hosts_per_block; ++h) {
      FlowSpec s;
      s.src_host = f.host_at(0, b, h);
      s.dst_host = f.host_at(0, 0, h);
      s.src_rail = 0;
      s.dst_rail = 0;
      s.size = bytes;
      s.tag = tag++;
      specs.push_back(s);
    }
  }
  return specs;
}

// The adversary: greedily picks each flow's source port to maximize the
// hottest link it can hit, using the same hash simulator the controller
// runs. This is the polarization storm the controller must defuse.
void polarize_ports(const FluidSim& sim, std::vector<FlowSpec>& specs,
                    int candidates) {
  std::unordered_map<topo::LinkId, int> load;
  for (auto& s : specs) {
    int best_score = -1;
    std::uint16_t best_port = s.src_port;
    std::vector<topo::LinkId> best_path;
    for (int k = 0; k < candidates; ++k) {
      FlowSpec c = s;
      c.src_port = static_cast<std::uint16_t>(
          4096u + (static_cast<std::uint32_t>(s.tag) * 31u + static_cast<std::uint32_t>(k) * 257u) %
                      50000u);
      auto path = sim.predict_path(c);
      if (!path) continue;
      int score = 0;
      for (topo::LinkId l : *path) {
        auto it = load.find(l);
        score = std::max(score, (it == load.end() ? 0 : it->second) + 1);
      }
      if (score > best_score) {
        best_score = score;
        best_port = c.src_port;
        best_path = std::move(*path);
      }
    }
    s.src_port = best_port;
    for (topo::LinkId l : best_path) ++load[l];
  }
}

struct WaveOutcome {
  double makespan = 0.0;
  double max_overload = 0.0;
  double bytes = 0.0;
};

// Runs one same-start wave on a fresh simulator over `fabric`.
WaveOutcome run_wave(topo::Fabric& fabric, const std::vector<FlowSpec>& specs,
                     std::uint64_t seed) {
  FluidSim sim(fabric, {}, seed);
  auto ids = sim.inject_batch(specs);
  sim.run();
  WaveOutcome out;
  out.makespan = sim.now();
  for (std::size_t l = 0; l < fabric.topo().link_count(); ++l) {
    out.max_overload = std::max(
        out.max_overload, sim.link_stats(static_cast<topo::LinkId>(l)).peak_overload);
  }
  for (net::FlowId id : ids) {
    if (sim.flow(id).admitted) out.bytes += static_cast<double>(sim.flow(id).spec.size);
  }
  return out;
}

std::vector<double> link_loads(const EcmpController& ctl,
                               const std::vector<FlowSpec>& specs) {
  std::vector<double> loads;
  for (const auto& [l, n] : ctl.estimate_load(specs)) {
    loads.push_back(static_cast<double>(n));
  }
  return loads;
}

void apply_fault(FluidSim& sim, const monitor::FaultSpec& fault) {
  const topo::Topology& topo = sim.fabric().topo();
  if (fault.manifestation == monitor::Manifestation::FailSlow) {
    sim.degrade_link(fault.target_link, fault.degrade_factor);
  } else if (fault.switch_scope) {
    topo::NodeId sw = topo.link(fault.target_link).dst;
    for (topo::LinkId l : topo.out_links(sw)) sim.set_link_up(l, false);
    for (topo::LinkId l : topo.in_links(sw)) sim.set_link_up(l, false);
  } else {
    sim.set_link_up(fault.target_link, false);
  }
}

double fabric_cost(const ShootoutConfig& cfg, const topo::Fabric& f) {
  const auto& p = f.params();
  double optics = 0.0;
  for (const auto& l : f.topo().links()) {
    int dc_src = f.topo().node(l.src).pod / p.pods;
    int dc_dst = f.topo().node(l.dst).pod / p.pods;
    double mult = dc_src != dc_dst ? cfg.longhaul_multiplier : 1.0;
    // Each duplex pair is one cable; halve the directed sum.
    optics += core::to_gbps(l.capacity) * cfg.cost_per_gbps * mult * 0.5;
  }
  return optics + p.switch_count() * cfg.cost_per_switch;
}

}  // namespace

topo::FabricParams style_params(const ShootoutConfig& cfg, FabricStyle style) {
  topo::FabricParams p;
  p.style = style;
  p.rails = cfg.rails;
  p.hosts_per_block = cfg.hosts_per_block;
  p.blocks_per_pod = cfg.blocks_per_pod;
  p.pods = cfg.pods;
  p.dual_tor = cfg.dual_tor;
  if (style == FabricStyle::Clos) p.tier3_oversub = cfg.clos_oversub;
  return p;
}

monitor::FaultSchedule blast_schedule(const topo::Fabric& fabric) {
  const topo::Topology& topo = fabric.topo();
  monitor::FaultSchedule sched;

  // ToR death with flows in flight: the dual-homing (P3) scenario.
  monitor::FaultSpec tor_death;
  tor_death.cause = monitor::RootCause::SwitchBug;
  tor_death.manifestation = monitor::Manifestation::FailStop;
  tor_death.target_link = topo.host_uplink(topo.hosts()[0], 0, 0);
  tor_death.switch_scope = true;
  tor_death.mid_transfer_fraction = 0.5;
  sched.add(tor_death);

  // First trunk (ToR -> Agg) link: optics degrade, then Agg death.
  topo::LinkId trunk = topo::kInvalidLink;
  for (const auto& l : topo.links()) {
    if (topo.node(l.src).kind == topo::NodeKind::Tor &&
        topo.node(l.dst).kind == topo::NodeKind::Agg) {
      trunk = l.id;
      break;
    }
  }
  if (trunk != topo::kInvalidLink) {
    monitor::FaultSpec degrade;
    degrade.cause = monitor::RootCause::OpticalFiber;
    degrade.manifestation = monitor::Manifestation::FailSlow;
    degrade.target_link = trunk;
    degrade.degrade_factor = 0.25;
    sched.add(degrade);

    monitor::FaultSpec agg_death;
    agg_death.cause = monitor::RootCause::SwitchConfig;
    agg_death.manifestation = monitor::Manifestation::FailStop;
    agg_death.target_link = trunk;
    agg_death.switch_scope = true;
    sched.add(agg_death);
  }
  return sched;
}

ShootoutReport run_shootout(const ShootoutConfig& cfg) {
  ShootoutReport report;

  for (FabricStyle style : topo::kAllFabricStyles) {
    StyleResult r;
    r.style = style;
    auto params = style_params(cfg, style);
    r.oversub = params.tier3_oversub;
    r.switches = params.switch_count();

    // --- Polarization storm ---
    topo::Fabric fabric(params);
    auto specs = storm_specs(fabric, cfg.flow_bytes);
    {
      FluidSim probe(fabric, {}, cfg.seed);
      EcmpController ctl(probe);
      polarize_ports(probe, specs, cfg.storm_port_candidates);
      r.storm_load_before = ctl.max_link_load(specs);
      r.fairness_before = core::jain_fairness(link_loads(ctl, specs));
      auto unmitigated = run_wave(fabric, specs, cfg.seed);
      r.util_before = unmitigated.max_overload;

      for (int round = 0; round < cfg.rebalance_rounds; ++round) {
        if (ctl.rebalance(specs) == 0) break;
      }
      r.storm_load_after = ctl.max_link_load(specs);
      r.storm_bound = ctl.rebalance_bound(specs);
      r.fairness_after = core::jain_fairness(link_loads(ctl, specs));
      auto mitigated = run_wave(fabric, specs, cfg.seed);
      r.util_after = mitigated.max_overload;
      r.storm_goodput_gbps =
          mitigated.makespan > 0 ? mitigated.bytes * 8.0 / mitigated.makespan / 1e9 : 0.0;
    }

    // --- Mixed-collective incast ---
    {
      auto background = background_specs(fabric, cfg.flow_bytes);
      auto incast = incast_specs(fabric, cfg.flow_bytes);
      double alone = run_wave(fabric, background, cfg.seed).makespan;
      FluidSim sim(fabric, {}, cfg.seed);
      auto bg_ids = sim.inject_batch(background);
      sim.inject_batch(incast);
      sim.run_watch(bg_ids);
      double mixed = sim.now();
      r.incast_ratio = mixed > 0 ? alone / mixed : 0.0;
    }

    // --- Failure blast radius (FaultSchedule sweep) ---
    {
      auto traffic = storm_specs(fabric, cfg.flow_bytes);
      double baseline = run_wave(fabric, traffic, cfg.seed).makespan;
      auto sched = blast_schedule(fabric);
      double avail_sum = 0.0, blast_sum = 0.0;
      for (const auto& fault : sched.faults) {
        // Fresh fabric per fault: set_link_up mutates routing state.
        topo::Fabric scratch(params);
        FluidSim sim(scratch, {}, cfg.seed);
        auto ids = sim.inject_batch(traffic);
        apply_fault(sim, fault);
        auto rep = sim.reroute_flows();
        std::size_t admitted = 0;
        for (net::FlowId id : ids) {
          if (sim.flow(id).admitted) ++admitted;
        }
        double stranded = admitted > 0
                              ? static_cast<double>(rep.stranded.size()) /
                                    static_cast<double>(admitted)
                              : 0.0;
        std::vector<net::FlowId> watch;
        for (net::FlowId id : ids) {
          const auto& st = sim.flow(id);
          if (st.admitted && !st.aborted && !st.path.empty()) watch.push_back(id);
        }
        sim.run_watch(watch);
        double slowdown = sim.now() > 0 ? std::min(1.0, baseline / sim.now()) : 0.0;
        blast_sum += stranded;
        avail_sum += (1.0 - stranded) * slowdown;
      }
      std::size_t n = std::max<std::size_t>(1, sched.size());
      r.blast_fraction = blast_sum / static_cast<double>(n);
      r.availability = avail_sum / static_cast<double>(n);
    }

    // --- Cost ---
    r.fabric_cost = fabric_cost(cfg, fabric);
    r.cost_per_good_gpu_hour =
        r.availability > 0
            ? r.fabric_cost / (params.gpu_count() * r.availability)
            : 0.0;

    report.rows.push_back(r);
  }

  // --- Composite score and ranking ---
  double best_goodput = 0.0, best_avail = 0.0, best_cpggh = 0.0;
  for (const auto& r : report.rows) {
    best_goodput = std::max(best_goodput, r.storm_goodput_gbps);
    best_avail = std::max(best_avail, r.availability);
    if (r.cost_per_good_gpu_hour > 0) {
      best_cpggh = best_cpggh == 0.0
                       ? r.cost_per_good_gpu_hour
                       : std::min(best_cpggh, r.cost_per_good_gpu_hour);
    }
  }
  for (auto& r : report.rows) {
    double perf = best_goodput > 0 ? r.storm_goodput_gbps / best_goodput : 0.0;
    double avail = best_avail > 0 ? r.availability / best_avail : 0.0;
    double cost = r.cost_per_good_gpu_hour > 0 ? best_cpggh / r.cost_per_good_gpu_hour : 0.0;
    r.score = (perf + avail + cost) / 3.0;
  }
  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [](const StyleResult& a, const StyleResult& b) {
                     return a.score > b.score;
                   });
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    report.rows[i].rank = static_cast<int>(i) + 1;
  }

  // --- Render the ranked table ---
  core::Table table({"#", "fabric", "ovsub", "switches", "storm-gbps",
                     "ecmp-load", "fairness", "incast", "blast", "avail",
                     "cost", "$/good-gpu-h", "score"});
  for (const auto& r : report.rows) {
    table.add_row({std::to_string(r.rank), topo::to_string(r.style),
                   core::Table::num(r.oversub, 1), std::to_string(r.switches),
                   core::Table::num(r.storm_goodput_gbps, 1),
                   std::to_string(r.storm_load_before) + "->" +
                       std::to_string(r.storm_load_after) + "/" +
                       std::to_string(r.storm_bound),
                   core::Table::num(r.fairness_before, 2) + "->" +
                       core::Table::num(r.fairness_after, 2),
                   core::Table::num(r.incast_ratio, 2),
                   core::Table::pct(r.blast_fraction, 1),
                   core::Table::pct(r.availability, 1),
                   core::Table::num(r.fabric_cost, 0),
                   core::Table::num(r.cost_per_good_gpu_hour, 2),
                   core::Table::num(r.score, 3)});
  }
  report.table = table.str();

  // --- Self-gates ---
  auto gate = [&](bool ok, const std::string& msg) {
    if (!ok) {
      report.gate_failures.push_back(
          "[" + std::to_string(report.gate_failures.size() + 1) + "] " + msg);
    }
  };
  const StyleResult* astral = nullptr;
  const StyleResult* clos = nullptr;
  const StyleResult* rail_only = nullptr;
  for (const auto& r : report.rows) {
    if (r.style == FabricStyle::AstralSameRail) astral = &r;
    if (r.style == FabricStyle::Clos) clos = &r;
    if (r.style == FabricStyle::RailOnly) rail_only = &r;
    const std::string name = topo::to_string(r.style);
    gate(r.storm_load_after <= r.storm_bound,
         name + ": post-rebalance ECMP load " + std::to_string(r.storm_load_after) +
             " exceeds documented bound " + std::to_string(r.storm_bound));
    gate(r.fairness_after >= r.fairness_before - 0.05,
         name + ": rebalance degraded Jain's fairness " +
             core::Table::num(r.fairness_before, 3) + " -> " +
             core::Table::num(r.fairness_after, 3));
    gate(r.util_after <= r.util_before + 0.05,
         name + ": post-mitigation max link utilization " +
             core::Table::num(r.util_after, 3) + " exceeds unmitigated " +
             core::Table::num(r.util_before, 3));
    gate(r.storm_goodput_gbps > 0.0, name + ": zero storm goodput");
    gate(r.availability > 0.0 && r.availability <= 1.0 + 1e-9,
         name + ": availability out of range");
  }
  gate(report.rows.size() == std::size(topo::kAllFabricStyles),
       "ranking table is missing zoo members");
  if (astral && clos) {
    gate(astral->storm_goodput_gbps > clos->storm_goodput_gbps,
         "astral-same-rail storm goodput must beat oversubscribed clos (" +
             core::Table::num(astral->storm_goodput_gbps, 1) + " vs " +
             core::Table::num(clos->storm_goodput_gbps, 1) + ")");
    gate(astral->incast_ratio >= clos->incast_ratio - 0.02,
         "astral-same-rail lost rail isolation under incast vs clos");
  }
  if (rail_only) {
    bool cheapest = true;
    for (const auto& r : report.rows) {
      if (r.style != FabricStyle::RailOnly &&
          r.cost_per_good_gpu_hour <= rail_only->cost_per_good_gpu_hour) {
        cheapest = false;
      }
    }
    gate(cheapest, "rail-only must win cost per good-GPU-hour");
  }
  return report;
}

}  // namespace astral::zoo
