#include "zoo/gray_campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/table.h"

namespace astral::zoo {

using monitor::ClusterRuntime;
using monitor::FaultSchedule;
using monitor::GrayKind;
using monitor::GrayRoutingConfig;
using monitor::RunOutcome;
using monitor::StreamAnalyzer;
using monitor::StreamAnalyzerConfig;
using topo::FabricStyle;

const char* to_string(GrayProfile p) {
  switch (p) {
    case GrayProfile::Crisp: return "crisp";
    case GrayProfile::Gray: return "gray";
    case GrayProfile::Mixed: return "mixed";
  }
  return "?";
}

GrayCampaignConfig::GrayCampaignConfig() {
  job.hosts = 8;  // One pod's worth on every member (intra-pod ring).
  job.iterations = 10;
  // Comm-heavy iteration so a silently derated link actually slows the
  // wall clock past the mitigation arm threshold.
  job.compute_time = 0.005;
  job.comm_bytes = 64ull * 1024 * 1024;
  job.recovery.enabled = true;
  binary.mode = GrayRoutingConfig::Mode::BinaryIsolate;
  alarm.enabled = true;
}

topo::FabricParams gray_style_params(const GrayCampaignConfig& cfg,
                                     FabricStyle style) {
  topo::FabricParams p;
  p.style = style;
  p.rails = cfg.rails;
  p.hosts_per_block = cfg.hosts_per_block;
  p.blocks_per_pod = cfg.blocks_per_pod;
  p.pods = cfg.pods;
  p.dual_tor = cfg.dual_tor;
  if (style == FabricStyle::Clos) p.tier3_oversub = cfg.clos_oversub;
  return p;
}

FaultSchedule gray_schedule(ClusterRuntime& runtime, GrayProfile profile,
                            int iterations, std::vector<int>* gray_indexes) {
  FaultSchedule sched;
  if (gray_indexes) gray_indexes->clear();
  int tor_iter = std::min(iterations - 1, 4);
  auto mark_gray = [&] {
    if (gray_indexes) gray_indexes->push_back(static_cast<int>(sched.size()) - 1);
  };
  switch (profile) {
    case GrayProfile::Crisp:
      // The availability-campaign classic: a fail-slow optics degrade
      // followed by a whole ToR dying mid-transfer.
      sched.add(runtime.make_fault(monitor::RootCause::OpticalFiber,
                                   monitor::Manifestation::FailSlow, 1));
      sched.add(runtime.make_mid_transfer_tor_death(tor_iter));
      break;
    case GrayProfile::Gray:
      // All silent. Distinct hops keep the three clear of the overlap
      // validator; the flapper swings every iteration (adversarial dwell).
      sched.add(runtime.make_gray_fault(GrayKind::FlappingLink, 1, 1));
      mark_gray();
      sched.add(runtime.make_gray_fault(GrayKind::PartialDegrade, 2, 2));
      mark_gray();
      sched.add(runtime.make_gray_fault(GrayKind::SlowNic, 3));
      mark_gray();
      break;
    case GrayProfile::Mixed:
      // Gray flapping underneath a crisp mid-transfer ToR death: the
      // damper must not confuse the two ladders.
      sched.add(runtime.make_gray_fault(GrayKind::FlappingLink, 1, 1));
      mark_gray();
      sched.add(runtime.make_mid_transfer_tor_death(tor_iter));
      break;
  }
  return sched;
}

namespace {

struct RunStats {
  RunOutcome outcome;
  std::uint64_t alarms = 0;
  int gray_faults = 0;
  int gray_alarmed = 0;
  double lead_sum = 0.0;
};

/// One seeded run of `profile` on `fabric` under `mode`, with the EWMA
/// precursor alarms attached (the analyzer outlives the runtime; the
/// engine detaches at destruction).
RunStats run_one(topo::Fabric& fabric, const GrayCampaignConfig& cfg,
                 GrayProfile profile, const GrayRoutingConfig& mode,
                 std::uint64_t seed) {
  RunStats rs;
  StreamAnalyzerConfig sc;
  sc.gray = cfg.alarm;
  sc.gray.enabled = true;
  StreamAnalyzer stream(fabric.topo(), sc);

  monitor::JobConfig job = cfg.job;
  job.gray = mode;
  ClusterRuntime runtime(fabric, job, seed);
  runtime.set_stream_analyzer(&stream);
  std::vector<int> gray_idx;
  runtime.inject(gray_schedule(runtime, profile, job.iterations, &gray_idx));
  rs.outcome = runtime.run();

  rs.alarms = stream.alarms_raised();
  rs.gray_faults = static_cast<int>(gray_idx.size());
  core::Seconds end = rs.outcome.makespan;
  for (int gi : gray_idx) {
    core::Seconds applied = runtime.fault_applied_time(gi);
    if (applied < 0.0) continue;  // Never struck (schedule past run end).
    bool fresh = false, standing = false;
    core::Seconds fresh_t = 0.0;
    for (const monitor::GrayAlarm& a : stream.alarms()) {
      if (a.t >= applied - 1e-9) {
        // A fresh rising edge after this fault landed.
        if (!fresh) fresh_t = a.t;
        fresh = true;
      } else {
        // An alarm already standing when the fault landed: the pod was
        // flagged before this fault deepened the regression (a second
        // gray fault cannot re-raise a latched signal).
        standing = true;
      }
    }
    if (!fresh && !standing) continue;
    // Lead time: from the moment the precursor covered this fault to
    // run end — the window a scheduler could act in.
    core::Seconds lead = end - (fresh ? std::max(fresh_t, applied) : applied);
    if (lead > 0.0) {
      ++rs.gray_alarmed;
      rs.lead_sum += lead;
    }
  }
  return rs;
}

/// Fault-free run under `mode` (the do-no-harm gate input).
RunOutcome run_clean(topo::Fabric& fabric, const GrayCampaignConfig& cfg,
                     const GrayRoutingConfig& mode, std::uint64_t seed) {
  monitor::JobConfig job = cfg.job;
  job.gray = mode;
  ClusterRuntime runtime(fabric, job, seed);
  return runtime.run();
}

}  // namespace

GrayCampaignReport run_gray_campaign(const GrayCampaignConfig& cfg) {
  GrayCampaignReport report;
  GrayRoutingConfig wcmp_mode = cfg.wcmp;
  wcmp_mode.mode = GrayRoutingConfig::Mode::Wcmp;
  wcmp_mode.flap_damping = true;
  GrayRoutingConfig binary_mode = cfg.binary;
  binary_mode.mode = GrayRoutingConfig::Mode::BinaryIsolate;

  core::Table table({"style", "profile", "wcmp gp", "binary gp", "derates",
                     "isolates", "osc w", "osc b", "alarms", "lead s"});

  for (FabricStyle style : topo::kAllFabricStyles) {
    topo::Fabric fabric(gray_style_params(cfg, style));

    // Do-no-harm: with no gray fault firing the Wcmp controller never
    // engages, so a clean run under it matches the legacy path exactly.
    {
      RunOutcome off = run_clean(fabric, cfg, GrayRoutingConfig{}, cfg.seed);
      RunOutcome wc = run_clean(fabric, cfg, wcmp_mode, cfg.seed);
      if (off.makespan != wc.makespan || off.goodput != wc.goodput ||
          off.downtime != wc.downtime || wc.derates != 0 ||
          off.mitigations.size() != wc.mitigations.size()) {
        report.gate_failures.push_back(
            std::string("do-no-harm: clean run under Wcmp diverged from "
                        "legacy on ") +
            topo::to_string(style));
      }
    }

    for (GrayProfile profile : kAllGrayProfiles) {
      GrayCell cell;
      cell.style = style;
      cell.profile = profile;
      double lead_sum = 0.0;
      for (int r = 0; r < cfg.runs; ++r) {
        std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(r);
        RunStats w = run_one(fabric, cfg, profile, wcmp_mode, seed);
        RunStats b = run_one(fabric, cfg, profile, binary_mode, seed);
        cell.goodput_wcmp += w.outcome.goodput;
        cell.goodput_binary += b.outcome.goodput;
        cell.derates += w.outcome.derates;
        cell.isolates += b.outcome.gray_isolates;
        cell.osc_wcmp += w.outcome.oscillations;
        cell.osc_binary += b.outcome.oscillations;
        cell.alarms += w.alarms;
        cell.gray_faults += w.gray_faults;
        cell.gray_alarmed += w.gray_alarmed;
        lead_sum += w.lead_sum;
      }
      cell.goodput_wcmp /= cfg.runs;
      cell.goodput_binary /= cfg.runs;
      cell.mean_lead =
          cell.gray_alarmed > 0 ? lead_sum / cell.gray_alarmed : 0.0;

      table.add_row({topo::to_string(style), to_string(cell.profile),
                     core::Table::num(cell.goodput_wcmp * 100.0, 1) + " %",
                     core::Table::num(cell.goodput_binary * 100.0, 1) + " %",
                     std::to_string(cell.derates),
                     std::to_string(cell.isolates),
                     std::to_string(cell.osc_wcmp),
                     std::to_string(cell.osc_binary),
                     std::to_string(cell.alarms),
                     core::Table::num(cell.mean_lead, 2)});

      // Gate: under the adversarial flapping profile the damped WCMP
      // controller must out-goodput binary isolation on every member.
      if (profile == GrayProfile::Gray &&
          cell.goodput_wcmp <= cell.goodput_binary) {
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "flapping goodput: wcmp %.3f <= binary %.3f on %s",
                      cell.goodput_wcmp, cell.goodput_binary,
                      topo::to_string(style));
        report.gate_failures.push_back(msg);
      }
      // Gate: damped WCMP mitigation never oscillates.
      if (profile != GrayProfile::Crisp && cell.osc_wcmp != 0) {
        report.gate_failures.push_back(
            std::string("oscillation: damped wcmp oscillated on ") +
            topo::to_string(style) + " " + to_string(profile));
      }
      report.cells.push_back(cell);
    }
  }

  // Gate: EWMA precursor alarms caught >= 90% of gray faults with
  // positive lead time, campaign-wide.
  int gray_total = 0, gray_hit = 0;
  for (const GrayCell& c : report.cells) {
    gray_total += c.gray_faults;
    gray_hit += c.gray_alarmed;
  }
  if (gray_total > 0 &&
      static_cast<double>(gray_hit) < 0.9 * static_cast<double>(gray_total)) {
    char msg[120];
    std::snprintf(msg, sizeof(msg),
                  "alarm coverage: %d/%d gray faults alarmed with lead > 0",
                  gray_hit, gray_total);
    report.gate_failures.push_back(msg);
  }

  report.table = table.str();
  return report;
}

}  // namespace astral::zoo
