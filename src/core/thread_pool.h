// Reusable work-stealing thread pool for solver-side parallelism.
//
// The pool exists for compute kernels inside the simulator itself — the
// sharded max-min solver today, fleet campaigns and topology-zoo sweeps
// tomorrow — not for I/O. Design constraints, in order:
//
//   * Determinism-friendly: parallel_for(n, fn) invokes fn(i, lane) for
//     every i in [0, n) exactly once; which lane runs which item is
//     scheduling-dependent, so callers keep results deterministic by
//     writing to per-item (or per-lane, order-merged-later) state only.
//     `lane` in [0, lanes()) lets callers index pre-sized arenas without
//     any thread-local machinery.
//   * Zero steady-state allocation: parallel_for type-erases the callable
//     on the stack (no std::function), and all queues are fixed arrays
//     sized at construction.
//   * lanes() == 1 degenerates to a plain loop on the caller's thread —
//     no worker threads are spawned at all, so single-threaded builds and
//     TSAN baselines pay nothing.
//
// Work distribution is range-splitting with stealing: [0, n) is divided
// into one contiguous chunk per lane; an owner pops items from the front
// of its chunk while idle lanes steal from the back of the fattest
// remaining chunk. Each lane's range lives in one 64-bit atomic (begin in
// the high half, end in the low half) so pop and steal race safely via
// compare-exchange, without locks on the item path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace astral::core {

class ThreadPool {
 public:
  /// Spawns `lanes - 1` workers; the caller participates as lane 0.
  /// lanes < 1 is clamped to 1.
  explicit ThreadPool(int lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return lanes_; }

  /// Runs fn(item, lane) for every item in [0, n); blocks until all items
  /// completed. Items must not throw and must touch disjoint (or lane-
  /// private) mutable state. Reentrant calls from inside fn are not
  /// allowed. n is limited to 2^32 - 1 items.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    auto invoke = +[](void* ctx, std::size_t item, int lane) {
      (*static_cast<std::remove_reference_t<Fn>*>(ctx))(item, lane);
    };
    run_job(n, invoke, &fn);
  }

 private:
  using InvokeFn = void (*)(void* ctx, std::size_t item, int lane);

  /// One lane's remaining range, packed begin:end into a u64 so owner pop
  /// (front) and thief steal (back) contend through a single CAS word.
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> range{0};
  };

  static constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
    return (static_cast<std::uint64_t>(begin) << 32) | end;
  }
  static constexpr std::uint32_t range_begin(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
  }
  static constexpr std::uint32_t range_end(std::uint64_t r) {
    return static_cast<std::uint32_t>(r);
  }

  void run_job(std::size_t n, InvokeFn invoke, void* ctx);
  /// Drains items as lane `lane` until no lane has work left. invoke/ctx
  /// are passed explicitly (snapshotted per generation under mutex_) so a
  /// lane can never mix one job's items with another job's callable.
  void work(int lane, InvokeFn invoke, void* ctx);
  /// Claims one item for `lane`: its own front first, then the fattest
  /// victim's back. Returns false when every lane is empty.
  bool claim(int lane, std::size_t& item);
  void worker_main(int lane);

  int lanes_ = 1;
  std::vector<Lane> ranges_;
  std::vector<std::thread> workers_;

  // Current job, published under mutex_ before generation_ bumps.
  InvokeFn invoke_ = nullptr;
  void* ctx_ = nullptr;
  std::atomic<std::size_t> items_left_{0};

  std::mutex mutex_;
  std::condition_variable wake_;  ///< Workers park here between jobs.
  std::condition_variable idle_;  ///< run_job waits here for stragglers.
  std::uint64_t generation_ = 0;  ///< Bumps per job; workers wait on it.
  int active_workers_ = 0;  ///< Workers currently inside work() (mutex_).
  bool stopping_ = false;
};

}  // namespace astral::core
