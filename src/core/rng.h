// Deterministic random number generation. Every stochastic component in
// Astral takes an explicit Rng (or seed) so simulations are reproducible
// run-to-run; nothing reads global entropy.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace astral::core {

/// Small, fast, deterministic PRNG (xoshiro256** seeded via splitmix64).
/// Not cryptographic; intended for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 expansion of the seed.
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller.
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_[4]{};
};

}  // namespace astral::core
