#include "core/math.h"

#include <algorithm>
#include <cmath>

namespace astral::core {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> zscores(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  double m = mean(xs);
  double sd = stddev(xs);
  if (sd < 1e-12) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / sd;
  return out;
}

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq < 1e-12) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

double Polynomial::eval(double x) const {
  double acc = 0.0;
  // Horner evaluation from the highest coefficient.
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) acc = acc * x + *it;
  return acc;
}

bool solve_linear(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a[static_cast<std::size_t>(r) * n + col]) >
          std::abs(a[static_cast<std::size_t>(pivot) * n + col])) {
        pivot = r;
      }
    }
    if (std::abs(a[static_cast<std::size_t>(pivot) * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a[static_cast<std::size_t>(pivot) * n + c],
                  a[static_cast<std::size_t>(col) * n + c]);
      }
      std::swap(b[static_cast<std::size_t>(pivot)], b[static_cast<std::size_t>(col)]);
    }
    for (int r = col + 1; r < n; ++r) {
      double f = a[static_cast<std::size_t>(r) * n + col] /
                 a[static_cast<std::size_t>(col) * n + col];
      for (int c = col; c < n; ++c) {
        a[static_cast<std::size_t>(r) * n + c] -= f * a[static_cast<std::size_t>(col) * n + c];
      }
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  // Back substitution.
  for (int r = n - 1; r >= 0; --r) {
    double s = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c) s -= a[static_cast<std::size_t>(r) * n + c] * b[static_cast<std::size_t>(c)];
    b[static_cast<std::size_t>(r)] = s / a[static_cast<std::size_t>(r) * n + r];
  }
  return true;
}

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys, int degree) {
  const int n = degree + 1;
  if (degree < 0 || xs.size() != ys.size() || xs.size() < static_cast<std::size_t>(n)) {
    return {};
  }
  // Normal equations: (V^T V) c = V^T y where V is the Vandermonde matrix.
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  // Precompute power sums sum(x^k) for k in [0, 2*degree].
  std::vector<double> pow_sums(static_cast<std::size_t>(2 * degree + 1), 0.0);
  for (double x : xs) {
    double p = 1.0;
    for (auto& s : pow_sums) {
      s += p;
      p *= x;
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a[static_cast<std::size_t>(r) * n + c] = pow_sums[static_cast<std::size_t>(r + c)];
    }
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double p = 1.0;
    for (int r = 0; r < n; ++r) {
      b[static_cast<std::size_t>(r)] += p * ys[i];
      p *= xs[i];
    }
  }
  if (!solve_linear(a, b, n)) return {};
  return Polynomial{std::move(b)};
}

double poly_rmse(const Polynomial& p, std::span<const double> xs, std::span<const double> ys) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double e = p.eval(xs[i]) - ys[i];
    s += e * e;
  }
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double relative_deviation(double a, double b) {
  double denom = std::max(std::abs(b), 1e-12);
  return std::abs(a - b) / denom;
}

}  // namespace astral::core
