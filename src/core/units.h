// Units used throughout Astral: sizes in bytes, time in seconds,
// bandwidth in bits per second. Plain doubles/integers with conversion
// helpers keep the arithmetic in simulators readable while the helper
// names document intent at call sites.
#pragma once

#include <cstdint>

namespace astral::core {

/// Size in bytes.
using Bytes = std::uint64_t;

/// Simulated time in seconds.
using Seconds = double;

/// Bandwidth in bits per second.
using Bps = double;

constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Converts gigabits per second to bits per second.
constexpr Bps gbps(double v) { return v * 1e9; }

/// Converts bits per second to gigabits per second (for reporting).
constexpr double to_gbps(Bps v) { return v / 1e9; }

/// Converts gigabytes per second (e.g. NVLink, HBM) to bits per second.
constexpr Bps gBps(double v) { return v * 8e9; }

/// Time in microseconds expressed as Seconds.
constexpr Seconds usec(double v) { return v * 1e-6; }

/// Time in milliseconds expressed as Seconds.
constexpr Seconds msec(double v) { return v * 1e-3; }

/// Transfer time of `size` bytes over `bw` bits/sec (no propagation delay).
constexpr Seconds transfer_time(Bytes size, Bps bw) {
  return bw > 0 ? static_cast<double>(size) * 8.0 / bw : 0.0;
}

/// TFLOPS expressed as floating point operations per second.
constexpr double tflops(double v) { return v * 1e12; }

}  // namespace astral::core
