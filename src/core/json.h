// Minimal JSON value, parser and serializer.
//
// Astral Seer exchanges operator graphs as Chakra-like JSON files and the
// monitoring system dumps telemetry snapshots as JSON; this self-contained
// implementation avoids an external dependency. It supports the full JSON
// grammar except for \u escapes beyond the BMP (surrogate pairs are kept
// verbatim as two escaped code units).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astral::core {

/// A JSON document node. Value-semantic; copying copies the subtree.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  // std::map keeps object keys ordered, which makes serialized output
  // deterministic — important for golden-file tests.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  /// Creates an empty array / object (distinct from null).
  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; calling the wrong one returns a zero value rather
  /// than throwing, so lookups on heterogeneous documents stay terse.
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? num_ : 0.0; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }
  const Array& as_array() const {
    static const Array empty;
    return is_array() ? arr_ : empty;
  }
  const Object& as_object() const {
    static const Object empty;
    return is_object() ? obj_ : empty;
  }

  /// Mutable access; converts the node to the requested type if needed.
  Array& make_array() {
    if (!is_array()) *this = array();
    return arr_;
  }
  Object& make_object() {
    if (!is_object()) *this = object();
    return obj_;
  }

  /// Object field lookup; returns a null Json when missing or not an object.
  const Json& operator[](std::string_view key) const {
    static const Json null_value;
    if (!is_object()) return null_value;
    auto it = obj_.find(key);
    return it == obj_.end() ? null_value : it->second;
  }

  /// Mutable object field (creates the key, converting to object).
  Json& operator[](std::string_view key) { return make_object()[std::string(key)]; }

  /// Array element; returns null Json when out of range.
  const Json& at(std::size_t i) const {
    static const Json null_value;
    if (!is_array() || i >= arr_.size()) return null_value;
    return arr_[i];
  }

  /// Appends to an array (converting to array if needed).
  void push_back(Json v) { make_array().push_back(std::move(v)); }

  std::size_t size() const {
    if (is_array()) return arr_.size();
    if (is_object()) return obj_.size();
    return 0;
  }

  bool contains(std::string_view key) const {
    return is_object() && obj_.find(key) != obj_.end();
  }

  /// Field with a fallback when absent / wrong type.
  double number_or(std::string_view key, double fallback) const {
    const Json& v = (*this)[key];
    return v.is_number() ? v.as_number() : fallback;
  }
  std::string string_or(std::string_view key, std::string fallback) const {
    const Json& v = (*this)[key];
    return v.is_string() ? v.as_string() : fallback;
  }

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a document. Returns nullopt (with *error set when provided)
  /// on malformed input.
  static std::optional<Json> parse(std::string_view text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace astral::core
