#include "core/thread_pool.h"

#include <cassert>

namespace astral::core {

ThreadPool::ThreadPool(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  ranges_ = std::vector<Lane>(static_cast<std::size_t>(lanes_));
  workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_job(std::size_t n, InvokeFn invoke, void* ctx) {
  if (n == 0) return;
  if (lanes_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) invoke(ctx, i, 0);
    return;
  }
  assert(n < (std::uint64_t{1} << 32));

  {
    std::unique_lock<std::mutex> lk(mutex_);
    // A lane that joined the previous job may still be scanning for work
    // after the last item completed; ranges must not be refilled under it.
    idle_.wait(lk, [this] { return active_workers_ == 0; });

    // Contiguous chunk per lane; the first n % lanes chunks get one extra.
    const std::uint32_t total = static_cast<std::uint32_t>(n);
    const std::uint32_t base = total / static_cast<std::uint32_t>(lanes_);
    const std::uint32_t extra = total % static_cast<std::uint32_t>(lanes_);
    std::uint32_t next = 0;
    for (int lane = 0; lane < lanes_; ++lane) {
      const std::uint32_t len =
          base + (static_cast<std::uint32_t>(lane) < extra ? 1 : 0);
      ranges_[static_cast<std::size_t>(lane)].range.store(
          pack(next, next + len), std::memory_order_relaxed);
      next += len;
    }
    items_left_.store(n, std::memory_order_release);
    invoke_ = invoke;
    ctx_ = ctx;
    ++generation_;
  }
  wake_.notify_all();

  work(0, invoke, ctx);

  // A thief may still be executing its last claimed item; completion is
  // when every participating lane has banked its executed count.
  std::size_t left;
  while ((left = items_left_.load(std::memory_order_acquire)) != 0) {
    items_left_.wait(left, std::memory_order_acquire);
  }
}

bool ThreadPool::claim(int lane, std::size_t& item) {
  // Own chunk first: pop from the front.
  auto& own = ranges_[static_cast<std::size_t>(lane)].range;
  std::uint64_t cur = own.load(std::memory_order_acquire);
  while (range_begin(cur) < range_end(cur)) {
    if (own.compare_exchange_weak(cur, pack(range_begin(cur) + 1, range_end(cur)),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      item = range_begin(cur);
      return true;
    }
  }
  // Steal from the back of the fattest remaining chunk.
  while (true) {
    int victim = -1;
    std::uint32_t victim_len = 0;
    for (int v = 0; v < lanes_; ++v) {
      if (v == lane) continue;
      const std::uint64_t r =
          ranges_[static_cast<std::size_t>(v)].range.load(std::memory_order_acquire);
      const std::uint32_t len =
          range_end(r) > range_begin(r) ? range_end(r) - range_begin(r) : 0;
      if (len > victim_len) {
        victim_len = len;
        victim = v;
      }
    }
    if (victim < 0) return false;
    auto& vr = ranges_[static_cast<std::size_t>(victim)].range;
    std::uint64_t r = vr.load(std::memory_order_acquire);
    while (range_begin(r) < range_end(r)) {
      if (vr.compare_exchange_weak(r, pack(range_begin(r), range_end(r) - 1),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
        item = range_end(r) - 1;
        return true;
      }
    }
    // Victim drained under us; rescan for another.
  }
}

void ThreadPool::work(int lane, InvokeFn invoke, void* ctx) {
  std::size_t executed = 0;
  std::size_t item;
  while (claim(lane, item)) {
    invoke(ctx, item, lane);
    ++executed;
  }
  if (executed > 0 &&
      items_left_.fetch_sub(executed, std::memory_order_acq_rel) == executed) {
    items_left_.notify_all();
  }
}

void ThreadPool::worker_main(int lane) {
  std::uint64_t seen = 0;
  while (true) {
    InvokeFn invoke;
    void* ctx;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      wake_.wait(lk, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      invoke = invoke_;
      ctx = ctx_;
      ++active_workers_;
    }
    work(lane, invoke, ctx);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      --active_workers_;
      if (active_workers_ == 0) idle_.notify_one();
    }
  }
}

}  // namespace astral::core
