#include "core/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace astral::core {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& msg) {
    if (error_ && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Json(true);
        break;
      case 'f':
        if (consume_literal("false")) return Json(false);
        break;
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        break;
      default: return parse_number();
    }
    fail("invalid token");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ || pos_ == start) {
      fail("malformed number");
      return std::nullopt;
    }
    return Json(value);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad hex digit in \\u escape");
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_array() {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_object() {
    consume('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj[std::move(*key)] = std::move(*v);
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

void dump_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  // JSON has no Infinity/NaN literal; emit null like other serializers
  // rather than producing an unparseable document.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  if (std::floor(d) == d && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  // Shortest representation that round-trips to the same bits: %.17g is
  // always exact but prints noise digits (0.1 -> "0.10000000000000001"),
  // which makes two serializations of equal values compare unequal and
  // trace goldens diff dirty. Probing precisions upward yields a single
  // canonical form per value, platform-independently.
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0.0;
    auto [ptr, ec] = std::from_chars(buf, buf + std::strlen(buf), back);
    if (ec == std::errc() && ptr == buf + std::strlen(buf) && back == d) break;
  }
  out += buf;
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string nl = indent > 0 ? "\n" : "";
  auto pad = [&](int d) {
    if (indent > 0) out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(out, num_); break;
    case Type::String: dump_escaped(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : obj_) {
        pad(depth + 1);
        dump_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
        if (++i < obj_.size()) out += ',';
        out += nl;
      }
      pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace astral::core
