// Small numerical toolbox: summary statistics, z-scores (used by the
// cross-host outlier detector), and polynomial least-squares fitting
// (used by Seer's self-correcting bandwidth calibration).
#pragma once

#include <span>
#include <vector>

namespace astral::core {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Median (interpolated); 0 for an empty span.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Z-score of each sample against the span's own mean/stddev. When the
/// spread is ~0 all scores are 0 (no outliers in a constant series).
std::vector<double> zscores(std::span<const double> xs);

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// allocations: 1.0 when perfectly even, approaching 1/n under total
/// polarization (one user takes everything). 1.0 for empty or all-zero
/// spans (nothing is unfairly shared).
double jain_fairness(std::span<const double> xs);

/// A polynomial sum_i coeffs[i] * x^i.
struct Polynomial {
  std::vector<double> coeffs;

  double eval(double x) const;
  int degree() const { return static_cast<int>(coeffs.size()) - 1; }
};

/// Least-squares fit of a degree-`degree` polynomial to (xs, ys). Returns
/// an empty polynomial when the system is degenerate (e.g. fewer points
/// than coefficients). Uses normal equations with partial pivoting, which
/// is ample for the low-degree fits (<= 4) Seer performs.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys, int degree);

/// Root mean square error between a polynomial and samples.
double poly_rmse(const Polynomial& p, std::span<const double> xs, std::span<const double> ys);

/// Relative deviation |a-b| / max(|b|, eps); the metric Seer reports when
/// comparing a forecast against a testbed measurement.
double relative_deviation(double a, double b);

/// Solves the dense linear system A x = b in-place (Gaussian elimination
/// with partial pivoting). A is row-major n x n. Returns false when the
/// matrix is singular to working precision.
bool solve_linear(std::vector<double>& a, std::vector<double>& b, int n);

}  // namespace astral::core
