// ASCII table rendering for the benchmark harness: every bench binary
// prints the paper's table/figure series as aligned rows so the output is
// directly comparable with the publication.
#pragma once

#include <string>
#include <vector>

namespace astral::core {

/// Column-aligned ASCII table. Build row by row, then str() / print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; missing trailing cells render empty, extra cells widen
  /// the table.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows; doubles are formatted with
  /// `precision` significant decimals.
  static std::string num(double v, int precision = 3);

  /// Percent formatting, e.g. 0.1634 -> "16.34%".
  static std::string pct(double fraction, int precision = 2);

  std::string str() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries to separate sub-tables.
void print_banner(const std::string& title);

}  // namespace astral::core
