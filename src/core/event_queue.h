// Discrete-event simulation kernel shared by the network fluid simulator,
// the Seer timeline engine, and the monitoring cluster runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/units.h"

namespace astral::core {

/// A minimal discrete-event scheduler. Events fire in (time, insertion
/// order); ties are broken FIFO so simulations are deterministic.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` to run at absolute simulated time `at`. Scheduling in
  /// the past is clamped to `now()`.
  void schedule_at(Seconds at, Handler fn) {
    if (at < now_) at = now_;
    heap_.push(Event{at, seq_++, std::move(fn)});
  }

  /// Schedules `fn` to run `delay` seconds from now.
  void schedule_in(Seconds delay, Handler fn) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Current simulated time.
  Seconds now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs a single event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // std::priority_queue::top is const; move out via const_cast is the
    // standard idiom but we copy the handler instead to stay well-defined.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  /// Runs events until the queue drains or `until` is reached (events at
  /// exactly `until` still run). Returns the number of events processed.
  std::size_t run(Seconds until = 1e18) {
    std::size_t n = 0;
    while (!heap_.empty() && heap_.top().time <= until) {
      step();
      ++n;
    }
    if (heap_.empty() && now_ < until && until < 1e18) now_ = until;
    return n;
  }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Handler fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Seconds now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace astral::core
