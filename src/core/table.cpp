#include "core/table.h"

#include <algorithm>
#include <cstdio>

namespace astral::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::str() const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      line += ' ';
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
      line += '|';
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t i = 0; i < ncols; ++i) {
    sep.append(widths[i] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& r : rows_) out += render_row(r);
  out += sep;
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

}  // namespace astral::core
