// ECMP hashing. Commodity switching ASICs hash the 5-tuple with a
// GF(2)-linear function (CRC family), a property exploited by the
// controller footnote in §2.1 and by Zhang et al. (ATC'21) for relative
// path control: because crc(a XOR b) = crc(a) XOR crc(b), flipping bits
// of the UDP source port moves the hash by a predictable offset. We model
// the ASIC with a CRC-16 (init 0, no final XOR) so linearity holds
// exactly, and the controller runs this very same "hash simulator".
#pragma once

#include <cstdint>

namespace astral::net {

/// The 5-tuple ECMP hashes on. IPs are node ids in the simulator.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 4791;  ///< RoCEv2 UDP destination port.
  std::uint8_t proto = 17;        ///< UDP.

  bool operator==(const FiveTuple&) const = default;
};

/// GF(2)-linear CRC-16/CCITT over a byte stream; init 0, no final XOR so
/// crc(a ^ b) == crc(a) ^ crc(b) for equal-length inputs.
std::uint16_t crc16(const std::uint8_t* data, std::size_t len, std::uint16_t init = 0);

/// Switch-ASIC ECMP hash model shared by the data plane and the central
/// controller's hash simulator.
class EcmpHash {
 public:
  /// Hash of the tuple as seen by the switch with the given salt (salts
  /// decorrelate hop-level decisions; many real ASICs use a per-switch
  /// seed for the same reason).
  std::uint16_t hash(const FiveTuple& t, std::uint32_t salt) const;

  /// Picks one of n equal-cost candidates. n must be > 0.
  int select(const FiveTuple& t, std::uint32_t salt, int n) const {
    return static_cast<int>(hash(t, salt) % static_cast<std::uint16_t>(n));
  }
};

}  // namespace astral::net
