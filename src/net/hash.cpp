#include "net/hash.h"

namespace astral::net {

std::uint16_t crc16(const std::uint8_t* data, std::size_t len, std::uint16_t init) {
  // CRC-16/CCITT polynomial 0x1021, bitwise, MSB-first. No final XOR and
  // zero init keep the map linear over GF(2).
  std::uint16_t crc = init;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t EcmpHash::hash(const FiveTuple& t, std::uint32_t salt) const {
  std::uint8_t buf[13];
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    buf[at] = static_cast<std::uint8_t>(v >> 24);
    buf[at + 1] = static_cast<std::uint8_t>(v >> 16);
    buf[at + 2] = static_cast<std::uint8_t>(v >> 8);
    buf[at + 3] = static_cast<std::uint8_t>(v);
  };
  put32(0, t.src_ip);
  put32(4, t.dst_ip);
  buf[8] = static_cast<std::uint8_t>(t.src_port >> 8);
  buf[9] = static_cast<std::uint8_t>(t.src_port);
  buf[10] = static_cast<std::uint8_t>(t.dst_port >> 8);
  buf[11] = static_cast<std::uint8_t>(t.dst_port);
  buf[12] = t.proto;
  std::uint16_t h = crc16(buf, sizeof(buf));
  // Salt folds in after the linear stage so per-switch decisions differ
  // while tuple-linearity within one switch is preserved.
  std::uint16_t s = static_cast<std::uint16_t>(salt ^ (salt >> 16));
  return static_cast<std::uint16_t>(h ^ s ^ static_cast<std::uint16_t>(s << 5));
}

}  // namespace astral::net
