#include "net/shard_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/thread_pool.h"
#include "net/fluid_sim.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap on (share, local link); local ids ascend with global ids, so
// tie-breaks — and therefore the freeze order and floating-point
// accumulation order — match the global solver's (share, link id) heap.
struct LocalHeapCmp {
  bool operator()(const std::pair<double, std::uint32_t>& a,
                  const std::pair<double, std::uint32_t>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};
}  // namespace

ShardSolver::ShardSolver(FluidSim& sim) : sim_(sim) {
  const std::size_t nlinks = sim_.fabric_.topo().link_count();
  pinned_.assign(nlinks, 0);
  uf_stamp_.assign(nlinks, 0);
  uf_parent_.assign(nlinks, 0);
  root_stamp_.assign(nlinks, 0);
  root_shard_.assign(nlinks, 0);
  seen_stamp_.assign(nlinks, 0);
  link_shard_.assign(nlinks, -1);
  link_local_.assign(nlinks, 0);
  boundary_slot_.assign(nlinks, 0);
}

ShardSolver::~ShardSolver() = default;

void ShardSolver::invalidate_caps() {
  caps_valid_ = false;
  if (relaxing()) {
    // What saturates depends on capacities: drop the learned pins and let
    // reconciliation re-derive them against the new capacity profile.
    std::fill(pinned_.begin(), pinned_.end(), 0);
    structure_valid_ = false;
  }
}

void ShardSolver::set_domains(std::vector<std::int32_t> domains) {
  assert(domains.empty() || domains.size() == pinned_.size());
  domains_ = std::move(domains);
  std::fill(pinned_.begin(), pinned_.end(), 0);
  structure_valid_ = false;
  caps_valid_ = false;
}

void ShardSolver::bump_build_epoch() {
  if (++build_epoch_ == 0) {
    // Wrapped: stale stamps from 2^64 builds ago could alias the counter.
    // Reset every stamp array and restart the counter above the reset
    // value (see the matching guards in FluidSim for the solve epochs).
    std::fill(uf_stamp_.begin(), uf_stamp_.end(), 0);
    std::fill(root_stamp_.begin(), root_stamp_.end(), 0);
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    build_epoch_ = 1;
  }
}

std::uint32_t ShardSolver::uf_find(std::uint32_t x) {
  while (uf_parent_[x] != x) {
    uf_parent_[x] = uf_parent_[uf_parent_[x]];  // path halving
    x = uf_parent_[x];
  }
  return x;
}

void ShardSolver::rebuild_structure() {
  const auto& active = sim_.active_;
  bump_build_epoch();
  const std::uint64_t e = build_epoch_;
  if (flow_local_.size() < sim_.flows_.size()) {
    flow_local_.resize(sim_.flows_.size());
  }

  // A flow whose entire path is relaxed links would belong to no shard
  // and get no rate; pin its links so it lands in one. (Cannot happen on
  // the built fabrics — the first hop is always a pod-local NIC uplink —
  // but user-supplied domain tables must not break the solver.)
  if (relaxing()) {
    for (FlowId f : active) {
      const auto& path = sim_.flows_[f].path;
      if (path.empty()) continue;
      bool has_internal = false;
      for (topo::LinkId l : path) {
        if (!is_boundary(l)) {
          has_internal = true;
          break;
        }
      }
      if (!has_internal) {
        for (topo::LinkId l : path) pinned_[l] = 1;
      }
    }
  }

  // Union-find over each flow's internal links: two links share a shard
  // iff some flow couples them (possibly through relaxed hops between).
  for (FlowId f : active) {
    std::uint32_t prev = topo::kInvalidLink;
    for (topo::LinkId l : sim_.flows_[f].path) {
      if (is_boundary(l)) continue;
      if (uf_stamp_[l] != e) {
        uf_stamp_[l] = e;
        uf_parent_[l] = l;
      }
      if (prev != topo::kInvalidLink) {
        const std::uint32_t ra = uf_find(prev);
        const std::uint32_t rb = uf_find(l);
        if (ra != rb) uf_parent_[rb] = ra;
      }
      prev = l;
    }
  }

  // Shard ids by first appearance in the active order: thread-count-
  // independent and stable for a given active set.
  nshards_ = 0;
  unsharded_.clear();
  for (FlowId f : active) {
    topo::LinkId first = topo::kInvalidLink;
    for (topo::LinkId l : sim_.flows_[f].path) {
      if (!is_boundary(l)) {
        first = l;
        break;
      }
    }
    if (first == topo::kInvalidLink) {
      unsharded_.push_back(f);  // stranded: no path, rate pinned to zero
      continue;
    }
    const std::uint32_t r = uf_find(first);
    if (root_stamp_[r] != e) {
      root_stamp_[r] = e;
      if (shards_.size() <= nshards_) shards_.emplace_back();
      shards_[nshards_].flows.clear();
      shards_[nshards_].links.clear();
      root_shard_[r] = static_cast<std::uint32_t>(nshards_);
      ++nshards_;
    }
    Shard& s = shards_[root_shard_[r]];
    flow_local_[f] = static_cast<std::uint32_t>(s.flows.size());
    s.flows.push_back(f);
  }

  // Collect per-shard links and relaxed links, and rebuild the published
  // live-link list in first-touch active order — exactly the order the
  // global fill_and_freeze would produce, which golden traces observe.
  boundary_links_.clear();
  sim_.clear_live();
  for (FlowId f : active) {
    for (topo::LinkId l : sim_.flows_[f].path) {
      if (!sim_.is_live_[l]) {
        sim_.is_live_[l] = 1;
        sim_.live_links_.push_back(l);
      }
      if (seen_stamp_[l] == e) continue;
      seen_stamp_[l] = e;
      if (is_boundary(l)) {
        boundary_slot_[l] = static_cast<std::uint32_t>(boundary_links_.size());
        boundary_links_.push_back(l);
        link_shard_[l] = -1;
      } else {
        const std::uint32_t sid = root_shard_[uf_find(l)];
        link_shard_[l] = static_cast<std::int32_t>(sid);
        shards_[sid].links.push_back(l);
      }
    }
  }

  // Compile each shard to dense local form.
  for (std::size_t si = 0; si < nshards_; ++si) {
    Shard& s = shards_[si];
    std::sort(s.links.begin(), s.links.end());
    for (std::uint32_t i = 0; i < s.links.size(); ++i) link_local_[s.links[i]] = i;
    const std::size_t nl = s.links.size();
    const std::size_t nf = s.flows.size();

    s.path_off.clear();
    s.path_lnk.clear();
    for (FlowId f : s.flows) {
      s.path_off.push_back(static_cast<std::uint32_t>(s.path_lnk.size()));
      for (topo::LinkId l : sim_.flows_[f].path) {
        if (!is_boundary(l)) s.path_lnk.push_back(link_local_[l]);
      }
    }
    s.path_off.push_back(static_cast<std::uint32_t>(s.path_lnk.size()));

    s.mem_off.clear();
    s.mem_flow.clear();
    for (topo::LinkId g : s.links) {
      s.mem_off.push_back(static_cast<std::uint32_t>(s.mem_flow.size()));
      for (const auto& m : sim_.members_[g]) {
        s.mem_flow.push_back(flow_local_[m.flow]);
      }
    }
    s.mem_off.push_back(static_cast<std::uint32_t>(s.mem_flow.size()));

    s.cap.resize(nl);
    s.demand.resize(nl);
    s.overload.resize(nl);
    s.nmembers.resize(nl);
    s.remcap.resize(nl);
    s.link_rate.resize(nl);
    s.unfrozen.resize(nl);
    s.changed_mark.assign(nl, 0);  // solve_shard relies on all-zero entry
    s.rate.resize(nf);
    s.frozen.resize(nf);
  }
}

void ShardSolver::rebuild_caps() {
  for (std::size_t si = 0; si < nshards_; ++si) {
    Shard& s = shards_[si];
    for (std::size_t li = 0; li < s.links.size(); ++li) {
      s.cap[li] = sim_.effcap_[s.links[li]];
    }
    std::fill(s.demand.begin(), s.demand.end(), 0.0);
  }
  boundary_demand_.assign(boundary_links_.size(), 0.0);
  boundary_overload_.resize(boundary_links_.size());

  // Offered demand at each hop is the prefix-min of upstream capacities
  // (same model as fill_and_freeze); accumulating in active order makes
  // the cached sums bit-identical to the global solver's per-solve sums.
  for (FlowId f : sim_.active_) {
    double prefix = kInf;
    for (topo::LinkId l : sim_.flows_[f].path) {
      const double cap_l = sim_.effcap_[l];
      const double contrib = prefix == kInf ? cap_l : prefix;
      if (link_shard_[l] >= 0) {
        Shard& s = shards_[static_cast<std::size_t>(link_shard_[l])];
        s.demand[link_local_[l]] += contrib;
      } else {
        boundary_demand_[boundary_slot_[l]] += contrib;
      }
      prefix = std::min(prefix, cap_l);
    }
  }

  for (std::size_t si = 0; si < nshards_; ++si) {
    Shard& s = shards_[si];
    const std::size_t nl = s.links.size();
    s.heap0.clear();
    for (std::size_t li = 0; li < nl; ++li) {
      const double cap = s.cap[li];
      s.overload[li] =
          cap > 0 ? s.demand[li] / cap : (s.demand[li] > 0 ? 1e9 : 0.0);
      s.nmembers[li] = s.mem_off[li + 1] - s.mem_off[li];
      // Every shard link has members, so every link enters the heap with
      // its initial share — remcap/unfrozen at their starting values.
      s.heap0.emplace_back(
          cap > 0 ? cap / static_cast<double>(s.nmembers[li]) : 0.0,
          static_cast<std::uint32_t>(li));
    }
    std::make_heap(s.heap0.begin(), s.heap0.end(), LocalHeapCmp{});
  }
  for (std::size_t bi = 0; bi < boundary_links_.size(); ++bi) {
    const double cap = sim_.effcap_[boundary_links_[bi]];
    boundary_overload_[bi] =
        cap > 0 ? boundary_demand_[bi] / cap
                : (boundary_demand_[bi] > 0 ? 1e9 : 0.0);
  }
}

void ShardSolver::solve_shard(Shard& s, bool timed) {
  using clock = std::chrono::steady_clock;
  const auto t0 = timed ? clock::now() : clock::time_point{};
  const std::size_t nf = s.flows.size();
  const std::size_t nl = s.links.size();

  // Reset the arenas by copy from the capacity tier; no allocation.
  std::copy(s.cap.begin(), s.cap.end(), s.remcap.begin());
  std::copy(s.nmembers.begin(), s.nmembers.end(), s.unfrozen.begin());
  std::fill(s.link_rate.begin(), s.link_rate.end(), 0.0);
  std::fill(s.rate.begin(), s.rate.end(), 0.0);
  std::fill(s.frozen.begin(), s.frozen.end(), 0);
  s.heap.assign(s.heap0.begin(), s.heap0.end());

  auto share_of = [&s](std::uint32_t li) {
    return s.remcap[li] > 0
               ? s.remcap[li] / static_cast<double>(s.unfrozen[li])
               : 0.0;
  };

  // Progressive filling, dense-local mirror of fill_and_freeze: freeze
  // the most constrained link's members at its fair share; changed links
  // get one fresh heap entry per level; stale entries are discarded.
  std::size_t frozen_count = 0;
  while (frozen_count < nf && !s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), LocalHeapCmp{});
    const auto [share, li] = s.heap.back();
    s.heap.pop_back();
    if (s.unfrozen[li] == 0) continue;
    if (share != share_of(li)) continue;  // stale: a newer entry exists
    const double level = std::isfinite(share) ? share : 0.0;
    s.changed_list.clear();
    for (std::uint32_t j = s.mem_off[li]; j < s.mem_off[li + 1]; ++j) {
      const std::uint32_t fi = s.mem_flow[j];
      if (s.frozen[fi]) continue;
      s.frozen[fi] = 1;
      ++frozen_count;
      s.rate[fi] = level;
      for (std::uint32_t k = s.path_off[fi]; k < s.path_off[fi + 1]; ++k) {
        const std::uint32_t pl = s.path_lnk[k];
        s.remcap[pl] -= level;
        s.unfrozen[pl] -= 1;
        s.link_rate[pl] += level;
        if (!s.changed_mark[pl]) {
          s.changed_mark[pl] = 1;
          s.changed_list.push_back(pl);
        }
      }
    }
    for (const std::uint32_t pl : s.changed_list) {
      s.changed_mark[pl] = 0;
      if (pl == li || s.unfrozen[pl] == 0) continue;
      s.heap.emplace_back(share_of(pl), pl);
      std::push_heap(s.heap.begin(), s.heap.end(), LocalHeapCmp{});
    }
  }

  // Publish into the simulator's global view. Shards own disjoint flows
  // and links, so concurrent publishes never touch the same element.
  for (std::size_t i = 0; i < nf; ++i) {
    sim_.flows_[s.flows[i]].rate = s.rate[i];
  }
  for (std::size_t li = 0; li < nl; ++li) {
    const topo::LinkId g = s.links[li];
    sim_.link_demand_[g] = s.demand[li];
    sim_.link_overload_[g] = s.overload[li];
    sim_.link_rate_[g] = s.link_rate[li];
    double& peak = sim_.stats_[g].peak_overload;
    if (s.overload[li] > peak) peak = s.overload[li];
  }

  if (timed) {
    s.solve_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  }
}

void ShardSolver::run_shards() {
  const bool timed = sim_.cfg_.shard_telemetry &&
                     (sim_.metrics_ != nullptr || sim_.tracer_ != nullptr);
  const int threads = sim_.cfg_.solver_threads;
  if (threads > 1 && nshards_ > 1) {
    if (!pool_ || pool_->lanes() != threads) {
      pool_ = std::make_unique<core::ThreadPool>(threads);
    }
    pool_->parallel_for(nshards_, [this, timed](std::size_t i, int) {
      solve_shard(shards_[i], timed);
    });
  } else {
    for (std::size_t i = 0; i < nshards_; ++i) solve_shard(shards_[i], timed);
  }
}

std::size_t ShardSolver::reconcile_boundary() {
  std::size_t new_pins = 0;
  for (std::size_t bi = 0; bi < boundary_links_.size(); ++bi) {
    const topo::LinkId g = boundary_links_[bi];
    double sum = 0.0;
    for (const auto& m : sim_.members_[g]) sum += sim_.flows_[m.flow].rate;
    sim_.link_demand_[g] = boundary_demand_[bi];
    sim_.link_overload_[g] = boundary_overload_[bi];
    sim_.link_rate_[g] = sum;
    double& peak = sim_.stats_[g].peak_overload;
    if (boundary_overload_[bi] > peak) peak = boundary_overload_[bi];
    // Saturated relaxed link: its constraint was binding after all. Pin
    // it internal (merging the shards it couples) and re-solve. The
    // threshold tolerates float noise on exactly-full links; over-
    // pinning only costs parallelism, never correctness.
    const double cap = sim_.effcap_[g];
    if (sum > cap * (1.0 + 1e-11) + 1e-3 && !pinned_[g]) {
      pinned_[g] = 1;
      ++new_pins;
    }
  }
  return new_pins;
}

void ShardSolver::emit_telemetry(std::size_t passes) {
  if (!sim_.cfg_.shard_telemetry) return;
  if (sim_.metrics_ != nullptr) {
    sim_.metrics_->add("fluidsim.solves.sharded");
    sim_.metrics_->add("fluidsim.shards.solved", nshards_);
    if (passes > 0) sim_.metrics_->add("fluidsim.reconcile.passes", passes);
    sim_.metrics_->set_gauge("fluidsim.shards", static_cast<double>(nshards_));
    obs::Histogram& h = sim_.metrics_->histogram("fluidsim.shard_solve_us");
    for (std::size_t si = 0; si < nshards_; ++si) {
      h.record(shards_[si].solve_us);
    }
  }
  if (sim_.tracer_ != nullptr) {
    // Spans land on the Link track (FluidSim's infrastructure track);
    // ts is simulation time, dur is wall-clock solve time in "sim
    // microseconds" — a profiling aid, not a simulated duration.
    for (std::size_t si = 0; si < nshards_; ++si) {
      sim_.tracer_->span(obs::Track::Link, "solver.shard", sim_.now_,
                         shards_[si].solve_us * 1e-6, {},
                         static_cast<double>(shards_[si].flows.size()));
    }
  }
}

void ShardSolver::solve() {
  std::size_t passes = 0;
  while (true) {
    if (!structure_valid_) {
      rebuild_structure();
      rebuild_caps();
      structure_valid_ = true;
      caps_valid_ = true;
    } else if (!caps_valid_) {
      rebuild_caps();
      caps_valid_ = true;
    }
    run_shards();
    for (FlowId f : unsharded_) sim_.flows_[f].rate = 0.0;
    if (!relaxing()) break;
    const std::size_t pins = reconcile_boundary();
    if (pins == 0) break;
    structure_valid_ = false;
    ++passes;
  }
  reconcile_passes_ += passes;
  emit_telemetry(passes);
}

}  // namespace astral::net
