#include "net/router.h"

#include <algorithm>

namespace astral::net {

namespace {
// Deterministic default source port for a flow: spreads flows of one
// src-dst pair across ports (§2.1 footnote, step 1) without an RNG so
// repeated runs pick identical paths.
std::uint16_t default_port(const FlowSpec& s) {
  std::uint64_t x = (static_cast<std::uint64_t>(s.src_host) << 32) ^
                    (static_cast<std::uint64_t>(s.dst_host) << 16) ^
                    (s.tag * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(s.src_rail) << 8) ^
                    static_cast<std::uint64_t>(s.dst_rail);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 29;
  return static_cast<std::uint16_t>(1024 + (x % 60000));
}
}  // namespace

FiveTuple Router::tuple_for(const FlowSpec& spec) const {
  FiveTuple t;
  t.src_ip = spec.src_host;
  t.dst_ip = spec.dst_host;
  t.src_port = spec.src_port != 0 ? spec.src_port : default_port(spec);
  return t;
}

std::optional<std::vector<topo::LinkId>> Router::route(const FlowSpec& spec,
                                                       const FiveTuple& tuple) const {
  const topo::Topology& topo = fabric_.topo();
  if (spec.src_host == spec.dst_host) return std::nullopt;

  EcmpHash hasher;
  const int sides = topo.sides();
  const auto& dst_node = topo.node(spec.dst_host);

  // The NIC binds the rail; Clos fabrics scramble which ToR that rail
  // lands on per host (see Fabric::build_tier1).
  auto tor_rail_for = [&](const topo::Node& host, int rail) {
    if (fabric_.params().style == topo::FabricStyle::Clos) {
      return (rail + host.index) % fabric_.params().rails;
    }
    return rail;
  };

  std::vector<topo::LinkId> path;
  int s1 = sides > 1 ? hasher.select(tuple, spec.src_host * 2654435761u, sides) : 0;
  topo::LinkId first = topo.host_uplink(spec.src_host, spec.src_rail, s1);
  if (first == topo::kInvalidLink) {
    s1 = 0;
    first = topo.host_uplink(spec.src_host, spec.src_rail, 0);
  }
  // Dual-ToR failover (P3): if the hashed side's uplink or ToR is dead,
  // the NIC's other port carries the rail.
  if (sides > 1 && (first == topo::kInvalidLink || !topo.link(first).up)) {
    s1 = 1 - s1;
    first = topo.host_uplink(spec.src_host, spec.src_rail, s1);
  }
  if (first == topo::kInvalidLink || !topo.link(first).up) return std::nullopt;
  path.push_back(first);
  topo::NodeId cur = topo.link(first).dst;

  // Destination ToR: same-rail flows stay in the plane (side) they
  // entered; cross-rail flows pick the arrival side by hash.
  const int dst_tor_rail = tor_rail_for(dst_node, spec.dst_rail);
  int s2 = spec.src_rail == spec.dst_rail
               ? s1
               : (sides > 1 ? hasher.select(tuple, spec.dst_host * 2654435761u, sides) : 0);
  // A delivery plane works only if the ToR is reachable from the source
  // side AND still owns a live *direct* downlink to the host (distance
  // 1). A dead ToR->host link strands the plane even when the spine can
  // reach the ToR: next_hops would then detour back up through the
  // aggregation tier, and the single appended last hop would leave the
  // path dangling mid-fabric.
  auto plane_ok = [&](topo::NodeId tor) {
    return tor != topo::kInvalidNode && topo.distance(cur, tor) >= 0 &&
           topo.distance(tor, spec.dst_host) == 1;
  };
  topo::NodeId target = fabric_.tor_at(dst_node.pod, dst_node.block, dst_tor_rail,
                                       std::min(s2, sides - 1));
  if (!plane_ok(target)) {
    // Plane unreachable or its host downlink is dead; try the other side.
    if (sides > 1) {
      target = fabric_.tor_at(dst_node.pod, dst_node.block, dst_tor_rail, 1 - s2);
    }
    if (!plane_ok(target)) return std::nullopt;
  }

  while (cur != target) {
    auto hops = topo.next_hops(cur, target);
    if (hops.empty()) return std::nullopt;
    topo::LinkId pick = hops[static_cast<std::size_t>(
        hasher.select(tuple, cur * 0x85ebca6bu, static_cast<int>(hops.size())))];
    path.push_back(pick);
    cur = topo.link(pick).dst;
  }

  auto last_hops = topo.next_hops(target, spec.dst_host);
  if (last_hops.empty()) return std::nullopt;
  path.push_back(last_hops.front());
  return path;
}

}  // namespace astral::net
