#include "net/controller.h"

#include <algorithm>
#include <map>

namespace astral::net {

EcmpController::EcmpController(const FluidSim& sim, Config cfg) : sim_(sim), cfg_(cfg) {}

std::unordered_map<topo::LinkId, int> EcmpController::estimate_load(
    const std::vector<FlowSpec>& specs) const {
  std::unordered_map<topo::LinkId, int> load;
  for (const FlowSpec& s : specs) {
    if (auto path = sim_.predict_path(s)) {
      for (topo::LinkId l : *path) ++load[l];
    }
  }
  return load;
}

int EcmpController::max_link_load(const std::vector<FlowSpec>& specs) const {
  int max_load = 0;
  for (const auto& [l, n] : estimate_load(specs)) max_load = std::max(max_load, n);
  return max_load;
}

int EcmpController::balanced_load(const std::vector<FlowSpec>& specs) const {
  const topo::Topology& topo = sim_.fabric().topo();

  // (a) Tier pigeonhole: shortest paths of a fixed endpoint pair cross
  // each tier (directed kind pair) the same number of times regardless of
  // the ECMP choice, so the crossings can at best spread evenly over the
  // tier's link census.
  using Tier = std::pair<int, int>;
  std::map<Tier, long long> tier_links;
  for (const auto& l : topo.links()) {
    tier_links[{static_cast<int>(topo.node(l.src).kind),
                static_cast<int>(topo.node(l.dst).kind)}]++;
  }
  std::map<Tier, long long> crossings;
  // (b) NIC floor: a flow's first and last hops are pinned to its
  // (host, rail) pair, with only the dual-ToR sides to split over.
  std::map<std::pair<topo::NodeId, int>, long long> src_nic, dst_nic;
  for (const FlowSpec& s : specs) {
    auto path = sim_.predict_path(s);
    if (!path) continue;
    for (topo::LinkId l : *path) {
      crossings[{static_cast<int>(topo.node(topo.link(l).src).kind),
                 static_cast<int>(topo.node(topo.link(l).dst).kind)}]++;
    }
    src_nic[{s.src_host, s.src_rail}]++;
    dst_nic[{s.dst_host, s.dst_rail}]++;
  }

  long long bound = 0;
  for (const auto& [tier, n] : crossings) {
    long long links = tier_links[tier];
    if (links > 0) bound = std::max(bound, (n + links - 1) / links);
  }
  const long long sides = topo.sides();
  for (const auto& [nic, n] : src_nic) bound = std::max(bound, (n + sides - 1) / sides);
  for (const auto& [nic, n] : dst_nic) bound = std::max(bound, (n + sides - 1) / sides);
  return static_cast<int>(bound);
}

int EcmpController::rebalance(std::vector<FlowSpec>& specs) const {
  auto load = estimate_load(specs);
  if (load.empty()) return 0;

  // Fair level: hosts emit one flow per active NIC, so on a non-blocking
  // fabric the minimum achievable max-load is the NIC-link load. Use the
  // median as the baseline and flag links above it.
  std::vector<double> counts;
  counts.reserve(load.size());
  for (const auto& [l, n] : load) counts.push_back(static_cast<double>(n));
  std::nth_element(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(counts.size() / 2),
                   counts.end());
  double fair = counts[counts.size() / 2];
  double hot_level = std::max(fair * (1.0 + cfg_.hot_factor), fair + 1.0);

  // Cache each flow's current predicted path so we can subtract it from
  // the load map before trying alternatives.
  std::vector<std::vector<topo::LinkId>> paths(specs.size());
  std::vector<std::size_t> congested;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto p = sim_.predict_path(specs[i]);
    if (!p) continue;
    paths[i] = std::move(*p);
    for (topo::LinkId l : paths[i]) {
      if (load[l] > hot_level) {
        congested.push_back(i);
        break;
      }
    }
  }

  // Worst-first: flows on the hottest links move first.
  std::sort(congested.begin(), congested.end(), [&](std::size_t a, std::size_t b) {
    auto worst = [&](std::size_t i) {
      int w = 0;
      for (topo::LinkId l : paths[i]) w = std::max(w, load[l]);
      return w;
    };
    return worst(a) > worst(b);
  });

  int reassigned = 0;
  for (std::size_t i : congested) {
    for (topo::LinkId l : paths[i]) --load[l];

    auto score = [&](const std::vector<topo::LinkId>& path) {
      int max_after = 0;
      int sum_after = 0;
      for (topo::LinkId l : path) {
        int n = load[l] + 1;
        max_after = std::max(max_after, n);
        sum_after += n;
      }
      return std::pair{max_after, sum_after};
    };

    auto best_path = paths[i];
    auto best_score = score(best_path);
    std::uint16_t best_port = specs[i].src_port;

    FlowSpec candidate = specs[i];
    for (int k = 0; k < cfg_.port_candidates; ++k) {
      candidate.src_port = static_cast<std::uint16_t>(
          cfg_.port_base + (static_cast<std::uint32_t>(i) * 131u + static_cast<std::uint32_t>(k)) %
                               60000u);
      auto p = sim_.predict_path(candidate);
      if (!p) continue;
      auto s = score(*p);
      if (s < best_score) {
        best_score = s;
        best_path = std::move(*p);
        best_port = candidate.src_port;
      }
    }

    if (best_port != specs[i].src_port) {
      specs[i].src_port = best_port;
      paths[i] = best_path;
      ++reassigned;
    }
    for (topo::LinkId l : paths[i]) ++load[l];
  }
  return reassigned;
}

}  // namespace astral::net
