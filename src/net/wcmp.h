// Weighted-cost multipath (WCMP) with BGP-style flap damping — the
// adaptive-routing alternative to the binary isolate-and-reroute ladder
// for gray failures. A flapping or partially-degraded link never goes
// administratively down; instead it carries a routing weight in (0, 1]
// that the controller derates on observation and the rebalancer treats
// as a cost divisor. Route-state transitions are damped exactly like BGP
// route-flap damping: every degradation onset accrues an exponentially
// decaying penalty; a link whose penalty crosses the suppress threshold
// is excluded from the candidate set entirely, and a derated or
// suppressed link is only restored once the penalty decays below the
// reuse threshold. Under an adversarial flap schedule the penalty is
// topped up faster than it decays, so after at most
// ceil(suppress_threshold / penalty_per_flap) onsets the link latches
// and mitigation provably stops oscillating.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/fluid_sim.h"

namespace astral::net {

struct WcmpConfig {
  /// Observed capacity fraction below which a link counts as degraded.
  double derate_threshold = 0.9;
  /// Weight floor for derated links (keeps path costs finite).
  double min_weight = 0.05;
  /// Penalty accrued on each healthy→degraded onset observation.
  double penalty_per_flap = 1.0;
  /// Penalty at which the link is suppressed (excluded from candidates).
  double suppress_threshold = 3.0;
  /// Penalty below which a derated/suppressed link may be restored.
  double reuse_threshold = 0.5;
  /// Exponential penalty decay half-life, in observe() ticks.
  double half_life_ticks = 8.0;
  /// Disables the hysteresis entirely: links restore the moment they are
  /// observed healthy and are never suppressed. This is the oscillating
  /// baseline the property tests compare against.
  bool damping = true;
  /// Source ports scanned per flow during weighted rebalance.
  int port_candidates = 64;
  /// Distinct predicted paths collected from that scan before scoring —
  /// the k-shortest-path candidate widening. On mesh fabrics (UBMesh's
  /// thin dim-3) many ports hash onto few paths, so the scan keeps going
  /// until it has seen `k_paths` genuinely different candidates.
  int k_paths = 8;
  std::uint16_t port_base = 2048;  ///< Candidate ports start here.
};

/// Routing state of one link as WCMP sees it.
enum class WcmpState : std::uint8_t {
  Healthy,     ///< Full weight, in the candidate set.
  Derated,     ///< Reduced weight, still usable at higher cost.
  Suppressed,  ///< Excluded from the candidate set until reuse.
};

struct LinkHealth {
  WcmpState state = WcmpState::Healthy;
  double weight = 1.0;       ///< Routing weight in (0, 1]; 0 when suppressed.
  double penalty = 0.0;      ///< Accumulated flap penalty (decaying).
  double fraction = 1.0;     ///< Last observed capacity fraction.
  std::uint32_t onsets = 0;  ///< healthy→degraded observation transitions.
  std::uint32_t engagements = 0;  ///< Healthy→{Derated,Suppressed} route
                                  ///< transitions (oscillation basis).
  std::uint64_t last_tick = 0;    ///< For per-link penalty decay.
};

/// Per-link health tracker + weighted rebalancer. Feed one observation
/// per watched link per control tick; `observe` returns true exactly when
/// the link's *routing* state changed (fresh derate, suppression, or
/// restoration) — the caller's cue to re-spread traffic, and the unit the
/// no-oscillation guarantee is stated in.
class WcmpController {
 public:
  using Config = WcmpConfig;

  explicit WcmpController(const FluidSim& sim, Config cfg = {});

  /// Advances the damping clock one control tick (call once per
  /// iteration, before that tick's observations).
  void tick() { ++tick_; }

  /// One observation of `link`: `capacity_fraction` is the fraction of
  /// nominal bandwidth the link currently delivers (in production an
  /// SNMP-utilization + INT estimate; here fed from the fluid model's
  /// effective capacity). Updates weight/penalty/state; returns true when
  /// the routing state changed.
  bool observe(topo::LinkId link, double capacity_fraction);

  /// Routing weight of a link: 1 when healthy/untracked, (0, 1) when
  /// derated, 0 when suppressed.
  double weight(topo::LinkId link) const;
  bool usable(topo::LinkId link) const { return weight(link) > 0.0; }
  /// Health record (default-constructed Healthy for untracked links).
  LinkHealth health(topo::LinkId link) const;

  /// Up to `k` distinct predicted paths for `spec`, found by scanning
  /// candidate source ports (paired with the port that produced each).
  /// The widened candidate set the weighted rebalance scores.
  std::vector<std::pair<std::uint16_t, std::vector<topo::LinkId>>>
  candidate_paths(const FlowSpec& spec, int k) const;

  /// Weighted-cost rebalance: reassigns source ports of flows whose
  /// predicted path crosses a derated or suppressed link, scoring each
  /// candidate path by (#suppressed links, max load/weight, sum
  /// load/weight). Mutates specs in place; returns the number of flows
  /// whose port changed. With every link healthy this is a no-op (specs
  /// stay byte-identical).
  int rebalance(std::vector<FlowSpec>& specs) const;

  /// Total routing-state changes observe() reported.
  std::uint64_t route_changes() const { return route_changes_; }
  std::uint64_t suppressions() const { return suppressions_; }
  std::uint64_t restorations() const { return restorations_; }
  /// Mitigation oscillation metric: a link that re-engages (leaves
  /// Healthy again) after having been restored oscillated. Sum over
  /// links of max(0, engagements - 1). Damped adversarial flapping
  /// latches each link after one engagement, so this stays 0.
  std::uint64_t oscillations() const;

 private:
  void decay(LinkHealth& h);

  const FluidSim& sim_;
  Config cfg_;
  std::unordered_map<topo::LinkId, LinkHealth> health_;
  std::uint64_t tick_ = 0;
  std::uint64_t route_changes_ = 0;
  std::uint64_t suppressions_ = 0;
  std::uint64_t restorations_ = 0;
};

}  // namespace astral::net
