// Flow abstractions for the fluid simulator. A flow is one RDMA QP's
// worth of traffic between two GPUs: it enters the fabric on the source
// GPU's rail NIC and leaves through the destination GPU's rail ToR.
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.h"
#include "net/hash.h"
#include "topo/types.h"

namespace astral::net {

using FlowId = std::uint32_t;
inline constexpr FlowId kInvalidFlow = static_cast<FlowId>(-1);

/// What the caller specifies when injecting a flow.
struct FlowSpec {
  topo::NodeId src_host = topo::kInvalidNode;
  topo::NodeId dst_host = topo::kInvalidNode;
  int src_rail = 0;  ///< NIC the flow leaves from.
  int dst_rail = 0;  ///< NIC the flow arrives at.
  core::Bytes size = 0;
  core::Seconds start = 0.0;
  std::uint16_t src_port = 0;  ///< UDP source port (the ECMP knob).
  std::uint64_t tag = 0;       ///< Caller-defined grouping (QP / collective op).
};

/// Runtime state of a flow.
struct FlowState {
  FlowSpec spec;
  FiveTuple tuple;
  std::vector<topo::LinkId> path;  ///< Host uplink ... ToR downlink.
  double remaining = 0.0;  ///< Bytes left; double for exact fluid math.
  double rate = 0.0;  ///< Current fluid rate, bits/sec.
  core::Seconds finish = -1.0;  ///< Completion time; <0 while active.
  bool admitted = false;  ///< False when routing failed (unreachable).
  /// True when the flow was torn down before completing (its sender
  /// died, or no surviving route existed after a reroute). Aborted flows
  /// hold no fabric bandwidth and never finish (finish stays < 0).
  bool aborted = false;

  // Solver bookkeeping owned by FluidSim (see "Incremental max-min
  // solver" in DESIGN.md). `member_pos[h]` is this flow's slot in the
  // persistent member list of `path[h]`, enabling O(1) swap-removal on
  // completion; `freeze_epoch` marks the solve in which the flow's rate
  // was last frozen, replacing a per-solve `is_frozen` bitmap.
  std::vector<std::uint32_t> member_pos;  ///< Parallel to `path`.
  std::uint64_t freeze_epoch = 0;
};

/// Per-link counters accumulated by the simulator; the physical-layer
/// monitors read these (§3.2).
struct LinkStats {
  double bytes_forwarded = 0.0;
  double busy_time = 0.0;       ///< Seconds with nonzero traffic.
  double util_time = 0.0;       ///< Integral of utilization (for averages).
  std::uint64_t ecn_marks = 0;  ///< Packets marked when overloaded.
  std::uint64_t pfc_pauses = 0; ///< Pause frames emitted upstream.
  double peak_overload = 0.0;   ///< Max demand/capacity observed.
};

}  // namespace astral::net
