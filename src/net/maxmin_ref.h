// Naive max-min (progressive filling) rate solver, retained verbatim from
// the pre-incremental FluidSim::recompute_rates(). It rebuilds hash-map
// scratch on every call: O(flows x hops) unordered_map operations plus an
// O(bottleneck-rounds x touched-links) linear scan per water-filling
// level. Two consumers keep it alive:
//   * tests/net_solver_equivalence_test.cpp uses it as the gold oracle
//     the incremental solver must match to 1e-9 relative;
//   * bench/bench_fluid_scaling.cpp uses it as the pre-change baseline
//     for the flows-vs-solve-time curves in BENCH_fluid.json.
#pragma once

#include <vector>

#include "topo/types.h"

namespace astral::net {

class MaxMinRef {
 public:
  /// Computes max-min fair rates for `paths` over links whose effective
  /// (post-degradation) capacities are `capacity[link]`, bits/sec.
  /// `rates` is resized to paths.size(); reusing it across calls avoids
  /// charging result allocation to the solver (the old solver wrote
  /// rates into persistent FlowState fields).
  static void solve(const std::vector<std::vector<topo::LinkId>>& paths,
                    const std::vector<double>& capacity,
                    std::vector<double>& rates);

  /// Per-link offered demand (prefix-min of upstream capacities summed
  /// over crossing flows) and overload from the last solve() call on this
  /// thread; exposed for equivalence checks against the published
  /// FluidSim link view.
  static double last_demand(topo::LinkId l);
  static double last_overload(topo::LinkId l);
};

}  // namespace astral::net
