#include "net/wcmp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace astral::net {

WcmpController::WcmpController(const FluidSim& sim, Config cfg)
    : sim_(sim), cfg_(cfg) {}

void WcmpController::decay(LinkHealth& h) {
  if (tick_ > h.last_tick && h.penalty > 0.0 && cfg_.half_life_ticks > 0.0) {
    double dt = static_cast<double>(tick_ - h.last_tick);
    h.penalty *= std::exp2(-dt / cfg_.half_life_ticks);
  }
  h.last_tick = tick_;
}

bool WcmpController::observe(topo::LinkId link, double capacity_fraction) {
  LinkHealth& h = health_[link];
  decay(h);
  bool was_degraded = h.fraction < cfg_.derate_threshold;
  bool degraded = capacity_fraction < cfg_.derate_threshold;
  h.fraction = capacity_fraction;
  if (degraded && !was_degraded) {
    ++h.onsets;
    h.penalty += cfg_.penalty_per_flap;
  }

  WcmpState next = h.state;
  double next_weight = h.weight;
  if (degraded) {
    // Fast down: derate (or suppress) the moment degradation is seen.
    bool suppress = cfg_.damping && h.penalty >= cfg_.suppress_threshold;
    next = suppress ? WcmpState::Suppressed : WcmpState::Derated;
    next_weight = suppress ? 0.0 : std::max(cfg_.min_weight, capacity_fraction);
  } else if (h.state != WcmpState::Healthy) {
    // Slow up: a derated/suppressed link is only restored once the flap
    // penalty has decayed below the reuse threshold (undamped: at once).
    if (!cfg_.damping || h.penalty < cfg_.reuse_threshold) {
      next = WcmpState::Healthy;
      next_weight = 1.0;
    } else if (h.state == WcmpState::Derated) {
      // Still in penalty: keep the derated weight pinned at the worst
      // fraction seen so the healthy phase of a flap changes nothing.
      next_weight = h.weight;
    }
  }

  bool changed = next != h.state;
  if (changed) {
    if (h.state == WcmpState::Healthy) ++h.engagements;
    if (next == WcmpState::Suppressed) ++suppressions_;
    if (next == WcmpState::Healthy) ++restorations_;
    ++route_changes_;
  }
  h.state = next;
  h.weight = next_weight;
  return changed;
}

double WcmpController::weight(topo::LinkId link) const {
  auto it = health_.find(link);
  return it == health_.end() ? 1.0 : it->second.weight;
}

LinkHealth WcmpController::health(topo::LinkId link) const {
  auto it = health_.find(link);
  return it == health_.end() ? LinkHealth{} : it->second;
}

std::uint64_t WcmpController::oscillations() const {
  std::uint64_t n = 0;
  for (const auto& [l, h] : health_) {
    if (h.engagements > 1) n += h.engagements - 1;
  }
  return n;
}

std::vector<std::pair<std::uint16_t, std::vector<topo::LinkId>>>
WcmpController::candidate_paths(const FlowSpec& spec, int k) const {
  std::vector<std::pair<std::uint16_t, std::vector<topo::LinkId>>> out;
  FlowSpec candidate = spec;
  for (int i = 0; i < cfg_.port_candidates && static_cast<int>(out.size()) < k;
       ++i) {
    candidate.src_port = static_cast<std::uint16_t>(
        cfg_.port_base +
        (static_cast<std::uint32_t>(spec.src_host) * 131u +
         static_cast<std::uint32_t>(i)) %
            60000u);
    auto p = sim_.predict_path(candidate);
    if (!p) continue;
    bool seen = false;
    for (const auto& [port, path] : out) seen |= path == *p;
    if (!seen) out.emplace_back(candidate.src_port, std::move(*p));
  }
  return out;
}

int WcmpController::rebalance(std::vector<FlowSpec>& specs) const {
  // Weighted load: flow count per link from the hash simulator, exactly
  // like EcmpController, but path cost divides by the routing weight so
  // derated links attract proportionally less traffic and suppressed
  // links none at all.
  std::unordered_map<topo::LinkId, int> load;
  std::vector<std::vector<topo::LinkId>> paths(specs.size());
  std::vector<std::size_t> affected;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto p = sim_.predict_path(specs[i]);
    if (!p) continue;
    paths[i] = std::move(*p);
    for (topo::LinkId l : paths[i]) ++load[l];
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (topo::LinkId l : paths[i]) {
      if (weight(l) < 1.0) {
        affected.push_back(i);
        break;
      }
    }
  }
  if (affected.empty()) return 0;

  // Worst-first: flows crossing the most-derated link move first.
  auto path_floor = [&](std::size_t i) {
    double w = 1.0;
    for (topo::LinkId l : paths[i]) w = std::min(w, weight(l));
    return w;
  };
  std::sort(affected.begin(), affected.end(),
            [&](std::size_t a, std::size_t b) { return path_floor(a) < path_floor(b); });

  struct Score {
    int suppressed;
    double max_cost;
    double sum_cost;
    bool operator<(const Score& o) const {
      if (suppressed != o.suppressed) return suppressed < o.suppressed;
      if (max_cost != o.max_cost) return max_cost < o.max_cost;
      return sum_cost < o.sum_cost;
    }
  };

  int reassigned = 0;
  for (std::size_t i : affected) {
    for (topo::LinkId l : paths[i]) --load[l];

    auto score = [&](const std::vector<topo::LinkId>& path) {
      Score s{0, 0.0, 0.0};
      for (topo::LinkId l : path) {
        double w = weight(l);
        if (w <= 0.0) {
          ++s.suppressed;
          continue;
        }
        double c = static_cast<double>(load[l] + 1) / w;
        s.max_cost = std::max(s.max_cost, c);
        s.sum_cost += c;
      }
      return s;
    };

    auto best_path = paths[i];
    Score best_score = score(best_path);
    std::uint16_t best_port = specs[i].src_port;
    for (auto& [port, path] : candidate_paths(specs[i], cfg_.k_paths)) {
      Score s = score(path);
      if (s < best_score) {
        best_score = s;
        best_path = std::move(path);
        best_port = port;
      }
    }

    if (best_port != specs[i].src_port) {
      specs[i].src_port = best_port;
      paths[i] = std::move(best_path);
      ++reassigned;
    }
    for (topo::LinkId l : paths[i]) ++load[l];
  }
  return reassigned;
}

}  // namespace astral::net
