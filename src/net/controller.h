// Centralized ECMP load-balancing controller (§2.1, footnote 1).
//
// Step 1 (at QP setup) is the deterministic per-pair source-port spread
// implemented in FluidSim's default port assignment. Step 2 is this
// controller: when switch ECN counters report congestion, it re-runs the
// production hash algorithm (FluidSim::predict_path — the "hash
// simulator") over candidate UDP source ports and reassigns ports of the
// congested flows so the next round of the collective takes balanced
// paths. Reassignments take effect on the next round, exactly as in the
// paper; Fig. 17 shows ECN counters decaying and stabilizing over rounds.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/fluid_sim.h"

namespace astral::net {

struct EcmpControllerConfig {
  int port_candidates = 64;  ///< Source ports tried per congested flow.
  /// A link is "hot" when its predicted flow count exceeds the fabric
  /// fair level by this factor.
  double hot_factor = 1.0;
  std::uint16_t port_base = 2048;  ///< Candidate ports start here.
};

class EcmpController {
 public:
  using Config = EcmpControllerConfig;

  explicit EcmpController(const FluidSim& sim, Config cfg = {});

  /// Predicted concurrent-flow count per link if `specs` ran together.
  std::unordered_map<topo::LinkId, int> estimate_load(
      const std::vector<FlowSpec>& specs) const;

  /// One control round: finds hot links in the predicted load of `specs`
  /// and greedily reassigns the source ports of flows crossing them to
  /// minimize the max per-link flow count. Mutates specs in place and
  /// returns the number of flows whose port changed.
  int rebalance(std::vector<FlowSpec>& specs) const;

  /// Max per-link predicted flow count (the polarization metric tests
  /// and Fig. 17 track).
  int max_link_load(const std::vector<FlowSpec>& specs) const;

  /// Pigeonhole lower bound on the max per-link flow count ANY port
  /// assignment could achieve for `specs`: the worse of (a) per-tier
  /// crossings spread perfectly evenly over that tier's links and (b) the
  /// NIC floor — flows sharing a (host, rail) injection point have only
  /// `sides` first-hop links to split over. No rewrite can beat this.
  int balanced_load(const std::vector<FlowSpec>& specs) const;

  /// The controller's documented guarantee: once rebalance() converges
  /// (max_link_load stops improving, <= ~8 rounds in practice),
  /// max_link_load(specs) <= rebalance_bound(specs). The greedy
  /// worst-first local search with a bounded port-candidate set is not
  /// optimal, so the bound is 2x the pigeonhole optimum plus one — the
  /// zoo-wide property test in tests/net_controller_test.cpp and the
  /// polarization-defuse gate in examples/topology_shootout both enforce
  /// exactly this expression.
  int rebalance_bound(const std::vector<FlowSpec>& specs) const {
    return 2 * balanced_load(specs) + 1;
  }

 private:
  const FluidSim& sim_;
  Config cfg_;
};

}  // namespace astral::net
