// Shared routing logic: turns a FlowSpec into a pinned fabric path using
// the ECMP hash at every hop. Used by both the flow-level fluid
// simulator and the packet-granular validation simulator so that the two
// fidelity levels route identically.
#pragma once

#include <optional>
#include <vector>

#include "net/flow.h"
#include "topo/fabric.h"

namespace astral::net {

class Router {
 public:
  explicit Router(const topo::Fabric& fabric) : fabric_(fabric) {}

  /// The 5-tuple a spec transmits with (deterministic default source
  /// port unless the spec pins one).
  FiveTuple tuple_for(const FlowSpec& spec) const;

  /// Hash-pinned path from the source NIC port to the destination host,
  /// honoring dual-ToR failover; nullopt when unroutable.
  std::optional<std::vector<topo::LinkId>> route(const FlowSpec& spec,
                                                 const FiveTuple& tuple) const;

  const topo::Fabric& fabric() const { return fabric_; }

 private:
  const topo::Fabric& fabric_;
};

}  // namespace astral::net
