// Pod-sharded parallel max-min engine behind FluidSim::resolve_rates.
//
// The active constraint graph (links as vertices, "some flow crosses
// both" as edges) decomposes along the fabric's locality structure:
// rail-aligned traffic never leaves its rail subgraph, pod-local traffic
// never leaves its pod. This engine discovers the connected bottleneck
// components with a union-find over the active flows' paths, compiles
// each component into a dense shard-local CSR problem (local link ids,
// contiguous path and member arrays, per-shard arenas), and solves the
// shards independently — concurrently on a core::ThreadPool when
// configured, or inline. Progressive filling inside a shard is the same
// algorithm as FluidSim::fill_and_freeze, so shard rates are bit-
// identical to the global solve: heap pops are value-ordered with ties
// broken on link id (local ids are assigned in ascending global-id
// order), demand accumulates in active-set order, and freeze order
// mirrors the persistent member lists. Because every shard is a function
// of its own inputs only, results are also bit-identical across thread
// counts.
//
// Two cache tiers make repeated solves cheap: the *structure* tier
// (partition, CSRs, live-link list) is invalidated by membership changes
// (admission, completion, abort, reroute); the *capacity* tier (per-link
// caps, offered demand, overloads, the initial heap — all pure functions
// of structure + effective capacities) is invalidated by degradations.
// A clean re-solve only replays the freeze loop over cached arenas and
// allocates nothing.
//
// Optional boundary relaxation (install domains via set_domains, seeded
// from parallel::link_locality_domains): links marked -1 (core tier /
// cross-pod) are dropped from the union-find so shards stay pod-sized
// even when traffic crosses pods. After the shards solve, a sequential
// reconciliation pass checks each relaxed link; one that saturates is
// pinned as internal (sticky until capacities change), the partition
// rebuilds, and the shards re-solve — each pass pins at least one link,
// so the loop terminates and the fixed point satisfies every constraint.
// By the bottleneck characterization of max-min fairness the fixed point
// is exact (see DESIGN.md "Pod-sharded parallel solver"); rates agree
// with the reference solver to floating-point tolerance rather than
// bit-for-bit, which is why relaxation is opt-in.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "topo/types.h"

namespace astral::core {
class ThreadPool;
}

namespace astral::net {

class FluidSim;

class ShardSolver {
 public:
  explicit ShardSolver(FluidSim& sim);
  ~ShardSolver();

  ShardSolver(const ShardSolver&) = delete;
  ShardSolver& operator=(const ShardSolver&) = delete;

  /// Membership changed (admit / complete / abort / reroute): partition,
  /// CSRs and the live-link list must be rebuilt at the next solve.
  void invalidate_structure() { structure_valid_ = false; }

  /// Effective capacities changed: demand/overload/initial-heap caches
  /// must be rebuilt; boundary pins reset (what saturates may differ).
  void invalidate_caps();

  /// Installs per-link locality domains (-1 = boundary) and enables
  /// boundary relaxation + reconciliation. Empty vector disables (exact
  /// connected-component sharding, the default).
  void set_domains(std::vector<std::int32_t> domains);

  /// Full sharded max-min solve over the simulator's active set; leaves
  /// published link state and flow rates exactly as the global
  /// fill_and_freeze would (bit-identical without domains).
  void solve();

  /// Shards used by the most recent solve (0 before any).
  std::size_t shard_count() const { return nshards_; }
  /// Lifetime reconciliation passes (re-solves forced by a saturated
  /// boundary link).
  std::uint64_t reconcile_passes() const { return reconcile_passes_; }

  /// Test hook for the epoch-wraparound guard: fast-forwards the build
  /// counter so the next builds exercise the wrap reset path.
  void debug_set_epoch_counter(std::uint64_t value) { build_epoch_ = value; }

 private:
  /// One connected bottleneck component, compiled to dense local form.
  /// Local link ids ascend with global ids (tie-breaks match the global
  /// solver); local flow ids follow active-set order.
  struct Shard {
    std::vector<FlowId> flows;            ///< Global ids, active order.
    std::vector<topo::LinkId> links;      ///< Global ids, ascending.
    // Path CSR: per local flow, the local ids of its internal links in
    // hop order (boundary links are excluded from the shard problem).
    std::vector<std::uint32_t> path_off;
    std::vector<std::uint32_t> path_lnk;
    // Member CSR: per local link, local flow ids mirroring the order of
    // FluidSim::members_ (freeze order must match the global solver).
    std::vector<std::uint32_t> mem_off;
    std::vector<std::uint32_t> mem_flow;
    // Capacity tier: pure functions of structure + effective caps.
    std::vector<double> cap;
    std::vector<double> demand;
    std::vector<double> overload;
    std::vector<std::uint32_t> nmembers;
    std::vector<std::pair<double, std::uint32_t>> heap0;  ///< Heapified.
    // Per-solve arenas (reset by copy/fill, never reallocated).
    std::vector<double> remcap;
    std::vector<double> link_rate;
    std::vector<double> rate;
    std::vector<std::uint32_t> unfrozen;
    std::vector<char> frozen;
    std::vector<char> changed_mark;
    std::vector<std::pair<double, std::uint32_t>> heap;
    std::vector<std::uint32_t> changed_list;
    double solve_us = 0.0;  ///< Wall time of the last solve (telemetry).
  };

  bool relaxing() const { return !domains_.empty(); }
  /// True when `l` is excluded from the shard graph this build.
  bool is_boundary(topo::LinkId l) const {
    return relaxing() && domains_[l] < 0 && !pinned_[l];
  }

  void bump_build_epoch();
  std::uint32_t uf_find(std::uint32_t x);
  void rebuild_structure();
  void rebuild_caps();
  void run_shards();
  void solve_shard(Shard& s, bool timed);
  /// Publishes relaxed links and pins saturated ones; returns the number
  /// of new pins (0 = converged).
  std::size_t reconcile_boundary();
  void emit_telemetry(std::size_t passes);

  FluidSim& sim_;
  bool structure_valid_ = false;
  bool caps_valid_ = false;

  std::vector<std::int32_t> domains_;  ///< Empty = exact sharding.
  std::vector<char> pinned_;           ///< Boundary links forced internal.

  std::vector<Shard> shards_;  ///< Reused across builds; only nshards_ live.
  std::size_t nshards_ = 0;
  std::vector<FlowId> unsharded_;  ///< Active flows with no path (stranded).

  // Build-time scratch, all epoch-stamped so builds never clear arrays.
  std::uint64_t build_epoch_ = 0;
  std::vector<std::uint64_t> uf_stamp_;    ///< Link seen by union-find.
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint64_t> root_stamp_;  ///< Root assigned a shard id.
  std::vector<std::uint32_t> root_shard_;
  std::vector<std::uint64_t> seen_stamp_;  ///< Link collected this build.
  std::vector<std::int32_t> link_shard_;   ///< Owning shard per link.
  std::vector<std::uint32_t> link_local_;  ///< Local id within its shard.
  std::vector<std::uint32_t> flow_local_;  ///< Local id within its shard.

  // Relaxed links active this build, in first-touch active-set order.
  std::vector<topo::LinkId> boundary_links_;
  std::vector<std::uint32_t> boundary_slot_;  ///< Per link, slot index.
  std::vector<double> boundary_demand_;
  std::vector<double> boundary_overload_;

  std::uint64_t reconcile_passes_ = 0;

  std::unique_ptr<core::ThreadPool> pool_;  ///< Lazily created.
};

}  // namespace astral::net
