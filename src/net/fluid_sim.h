// Flow-level fluid network simulator.
//
// Rates follow max-min fairness (progressive filling), the fluid limit of
// DCQCN-style congestion control on a lossless fabric. The simulator is
// event-driven: rates are piecewise constant between flow arrivals and
// completions, so byte counters integrate exactly. Congestion signals are
// derived per interval:
//   * a link whose offered demand exceeds capacity accrues ECN marks
//     proportional to the overload (RED-on-ECN fluid model);
//   * when the overload passes the PFC threshold, pause frames are
//     accounted against the links feeding the hotspot (congestion
//     spreading, as in the paper's PCIe/PFC-storm incident);
//   * per-hop latency = base switching delay + a queue term that grows
//     with overload, feeding the INT pingmesh monitors (Fig. 9c).
//
// The rate solver is incremental and allocation-free in steady state:
// per-link membership is maintained by delta as flows arrive and finish,
// scratch state lives in flat epoch-stamped arrays (no hashing, no
// clearing), bottleneck selection uses a lazy min-heap, and events whose
// link footprint is disjoint from the rest of the active set bypass the
// global refill entirely. See DESIGN.md ("Incremental max-min solver");
// src/net/maxmin_ref.{h,cpp} retains the naive solver as the equivalence
// oracle.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "net/flow.h"
#include "net/router.h"
#include "topo/fabric.h"

namespace astral::obs {
class Tracer;
class Metrics;
class Histogram;
}  // namespace astral::obs

namespace astral::net {

class ShardSolver;

/// Sentinel deadline meaning "run until the workload drains".
inline constexpr core::Seconds kRunForever = 1e18;

/// True when `until` is an actual deadline rather than kRunForever.
constexpr bool is_bounded(core::Seconds until) { return until < kRunForever; }

struct FluidSimConfig {
  double ecn_util_threshold = 0.95;  ///< Overload where marking starts.
  double ecn_marks_per_flow_sec = 2e4;  ///< Marking intensity scale.
  double pfc_overload = 1.6;  ///< Demand/capacity ratio triggering PFC.
  double pfc_pauses_per_sec = 5e3;
  core::Seconds base_hop_latency = core::usec(0.6);
  core::Seconds max_queue_delay = core::usec(300.0);
  /// Completions within this window collapse into one rate update;
  /// symmetric collectives otherwise trigger quadratic recomputation.
  core::Seconds completion_epsilon = 1e-9;
  /// Full solves go through the pod-sharded engine (see shard_solver.h):
  /// connected bottleneck components solve independently over cached
  /// structure. Bit-identical to the monolithic path; off = legacy solver.
  bool sharding = true;
  /// Worker lanes for shard solves (1 = inline, no threads spawned).
  /// Rates are bit-identical across any thread count.
  int solver_threads = 1;
  /// Emit per-shard solve spans/counters/histogram when a tracer or
  /// metrics registry is attached. Off by default so traces and metric
  /// snapshots are byte-identical to the pre-sharding solver's.
  bool shard_telemetry = false;
};

class FluidSim {
 public:
  using Config = FluidSimConfig;

  /// The simulator reads topology routing and link capacities; the fabric
  /// must outlive the simulator. Link up/down changes through the fabric
  /// are honored at the next flow admission. Link *capacities* are cached
  /// at construction (scaled by degrade_link); mutate capacity through
  /// degrade_link, not the fabric.
  FluidSim(topo::Fabric& fabric, Config cfg = {}, std::uint64_t seed = 1);
  ~FluidSim();

  /// Injects a flow; routing happens immediately (paths are pinned at QP
  /// creation, matching per-flow ECMP). Returns the flow id; the flow's
  /// `admitted` flag is false when no fabric route exists.
  FlowId inject(const FlowSpec& spec);

  /// Injects a whole wave in one call: per-spec routing, but a single
  /// heap fix-up instead of one push per flow. Collectives emit their
  /// same-start waves through this so admission and the first solve are
  /// batched (the arrival-side mirror of completion batching).
  std::vector<FlowId> inject_batch(std::span<const FlowSpec> specs);

  /// Predicts the path a spec would take without injecting it — the
  /// controller's "hash simulator" entry point.
  std::optional<std::vector<topo::LinkId>> predict_path(const FlowSpec& spec) const;

  /// Runs until all injected flows complete (or `until`, if given).
  void run(core::Seconds until = kRunForever);

  /// Runs until every flow in `watch` has completed (or `until`). Lets a
  /// measurement finish while long-lived background flows keep running.
  void run_watch(std::span<const FlowId> watch, core::Seconds until = kRunForever);

  /// True when no active or pending flows remain.
  bool idle() const { return active_.empty() && pending_.empty(); }

  core::Seconds now() const { return now_; }
  const FlowState& flow(FlowId id) const { return flows_[id]; }
  std::size_t flow_count() const { return flows_.size(); }

  /// Flows currently holding fabric bandwidth (admitted, not finished).
  std::span<const FlowId> active_flows() const { return active_; }

  /// Current fluid rate of a flow (0 once finished) — the transport-layer
  /// ms-level QP rate monitor samples this.
  double current_rate(FlowId id) const { return flows_[id].rate; }

  const LinkStats& link_stats(topo::LinkId id) const { return stats_[id]; }

  /// Instantaneous per-hop forwarding latency (INT view).
  core::Seconds hop_latency(topo::LinkId id) const;

  /// Capacity after degradations, bits/sec (what the solver allocates).
  double effective_capacity(topo::LinkId id) const { return effcap_[id]; }

  /// Multiplies a link's effective capacity by `factor` (< 1 models a
  /// degraded optical module / broken PCIe lane). factor <= 0 blocks the
  /// link for new rate allocation while keeping it routable, modelling a
  /// silent blackhole. Any elapsed interval is accumulated against the
  /// pre-degradation overloads before rates change.
  void degrade_link(topo::LinkId id, double factor);

  /// Marks a link up or down in both the fabric (so routing skips it
  /// from now on) and the solver (a down link allocates zero). Bringing
  /// the link back up restores its degraded capacity, not full capacity.
  void set_link_up(topo::LinkId id, bool up);

  /// What reroute_flows() did to the live flow set.
  struct RerouteReport {
    std::vector<FlowId> rerouted;  ///< Moved onto a surviving path.
    std::vector<FlowId> stranded;  ///< No surviving path; stalled at rate 0.
    bool all_moved() const { return stranded.empty(); }
  };

  /// In-flight failover (the router's P3 path): every live or pending
  /// flow whose pinned path crosses a dead link (down, or zero effective
  /// capacity) is re-resolved through the router — which now picks the
  /// surviving dual-ToR side or an alternate ECMP hop — and rates are
  /// re-solved. Flows with no surviving route are stripped of their path
  /// and stall at rate zero until aborted or the fabric heals.
  RerouteReport reroute_flows();

  /// Aborts a live or pending flow: it releases fabric bandwidth
  /// immediately and never finishes (`aborted` set, finish stays < 0).
  /// Models the sending process dying — fail-stop hosts abort their
  /// flows rather than leaving them hanging in the solver.
  void abort_flow(FlowId id);

  /// Forces a full max-min solve now. The event loop schedules solves
  /// itself; this exists for benchmarks and tests that measure or poke
  /// the solver directly.
  void resolve_rates();

  /// Removes all finished-flow bookkeeping but keeps counters; long
  /// campaigns call this between iterations to bound memory.
  void recycle_finished();

  /// Resets ECN/PFC/byte counters (e.g. between controller rounds).
  void reset_stats();

  /// Total bytes still in flight.
  core::Bytes backlog() const;

  const topo::Fabric& fabric() const { return fabric_; }

  /// Attaches a flight recorder (nullptr detaches). When attached, flow
  /// completion/abort spans, reroute/strand instants, and per-link
  /// utilization samples are recorded; flow events inherit the tracer's
  /// ambient job/collective keys. Every hook is one branch when detached.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (nullptr detaches): solver-step timing
  /// histogram ("fluidsim.solve_us") plus solve/flow-outcome counters.
  void set_metrics(obs::Metrics* metrics);
  obs::Metrics* metrics() const { return metrics_; }

  /// Installs per-link locality domains for the sharded solver (see
  /// parallel::link_locality_domains): links with domain -1 are relaxed
  /// out of shard discovery and reconciled sequentially. Empty vector
  /// restores exact connected-component sharding (the default).
  void set_shard_domains(std::vector<std::int32_t> domains);

  /// Shards used by the most recent sharded solve (0 before any, or when
  /// cfg.sharding is off).
  std::size_t solver_shard_count() const;
  /// Lifetime reconciliation passes forced by saturated boundary links.
  std::uint64_t solver_reconcile_passes() const;

  /// Test hook: fast-forwards every internal epoch counter (island-mark,
  /// solve, changed-set, shard-build) so tests can exercise the
  /// wraparound reset paths without 2^64 solves.
  void debug_set_epoch_counters(std::uint64_t value);

 private:
  friend class ShardSolver;
  /// An entry in a link's persistent member list: which flow crosses the
  /// link, and at which hop of its path (so swap-removal can fix the
  /// displaced flow's member_pos in O(1)).
  struct Member {
    FlowId flow;
    std::uint32_t hop;
  };

  FlowId inject_impl(const FlowSpec& spec, bool fix_heap);
  void run_impl(core::Seconds until, std::span<const FlowId> watch);
  bool all_finished(std::span<const FlowId> watch) const;
  void admit(FlowId id);
  void remove_member(FlowId id);
  /// True when every link the batch touches is used by batch flows only:
  /// the batch forms its own constraint island and the rest of the active
  /// set keeps its water-filling levels.
  bool batch_is_island(std::span<const FlowId> batch);
  void solve_full();
  /// Progressive filling over `subset` only; existing published rates on
  /// other links stay valid (caller guarantees the subset is an island).
  void fill_and_freeze(std::span<const FlowId> subset);
  double share_of(topo::LinkId l) const {
    return remcap_[l] > 0 ? remcap_[l] / static_cast<double>(unfrozen_[l]) : 0.0;
  }
  void publish_zero(topo::LinkId l);
  void clear_live();
  /// Integrates stats over [accumulated_until_, t] at current rates.
  void accumulate_until(core::Seconds t);

  topo::Fabric& fabric_;
  Router router_;
  Config cfg_;
  core::Rng rng_;
  core::Seconds now_ = 0.0;
  core::Seconds accumulated_until_ = 0.0;  ///< Stats integrated up to here.

  std::vector<FlowState> flows_;
  std::vector<FlowId> active_;
  // Pending arrivals sorted by start time (min-heap by start).
  std::vector<FlowId> pending_;

  std::vector<LinkStats> stats_;
  std::vector<double> degrade_;
  std::vector<double> effcap_;  ///< capacity * degrade, cached.
  // Published per-link view of the current solution (what accumulate_
  // until and hop_latency read). Only links in live_links_ are nonzero.
  std::vector<double> link_demand_;
  std::vector<double> link_overload_;
  std::vector<double> link_rate_;  ///< Allocated rate sum per link.

  // --- incremental solver state ---
  std::vector<std::vector<Member>> members_;  ///< Per-link active flows.
  std::uint64_t solve_epoch_ = 0;
  std::vector<std::uint64_t> touch_epoch_;  ///< Last solve touching link.
  std::vector<double> remcap_;              ///< Unallocated capacity.
  std::vector<std::uint32_t> unfrozen_;     ///< Members not yet frozen.
  std::vector<char> is_live_;               ///< Link in live_links_.
  std::vector<topo::LinkId> live_links_;    ///< Links with published state.
  std::vector<topo::LinkId> touched_scratch_;  ///< Links seen this solve.
  std::vector<std::pair<double, topo::LinkId>> heap_;  ///< Lazy min-heap.
  std::uint64_t mark_epoch_counter_ = 0;    ///< For batch_is_island.
  std::vector<std::uint64_t> mark_epoch_;
  std::vector<std::uint32_t> mark_count_;
  std::uint64_t changed_epoch_ = 0;  ///< Dedupes heap pushes per level.
  std::vector<std::uint64_t> changed_epoch_mark_;
  std::vector<topo::LinkId> changed_scratch_;
  std::vector<FlowId> admitted_batch_;   ///< Arrival staging (reused).
  std::vector<FlowId> completed_batch_;  ///< Completion staging (reused).
  bool solve_pending_ = false;  ///< Active rates stale; full solve due.
  std::unique_ptr<ShardSolver> shard_;  ///< Sharded full-solve engine.

  // --- observability (null = disabled; hooks cost one branch) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::Histogram* solve_hist_ = nullptr;  ///< Cached "fluidsim.solve_us".
};

}  // namespace astral::net
