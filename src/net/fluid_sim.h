// Flow-level fluid network simulator.
//
// Rates follow max-min fairness (progressive filling), the fluid limit of
// DCQCN-style congestion control on a lossless fabric. The simulator is
// event-driven: rates are piecewise constant between flow arrivals and
// completions, so byte counters integrate exactly. Congestion signals are
// derived per interval:
//   * a link whose offered demand exceeds capacity accrues ECN marks
//     proportional to the overload (RED-on-ECN fluid model);
//   * when the overload passes the PFC threshold, pause frames are
//     accounted against the links feeding the hotspot (congestion
//     spreading, as in the paper's PCIe/PFC-storm incident);
//   * per-hop latency = base switching delay + a queue term that grows
//     with overload, feeding the INT pingmesh monitors (Fig. 9c).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "net/flow.h"
#include "net/router.h"
#include "topo/fabric.h"

namespace astral::net {

struct FluidSimConfig {
  double ecn_util_threshold = 0.95;  ///< Overload where marking starts.
  double ecn_marks_per_flow_sec = 2e4;  ///< Marking intensity scale.
  double pfc_overload = 1.6;  ///< Demand/capacity ratio triggering PFC.
  double pfc_pauses_per_sec = 5e3;
  core::Seconds base_hop_latency = core::usec(0.6);
  core::Seconds max_queue_delay = core::usec(300.0);
  /// Completions within this window collapse into one rate update;
  /// symmetric collectives otherwise trigger quadratic recomputation.
  core::Seconds completion_epsilon = 1e-9;
};

class FluidSim {
 public:
  using Config = FluidSimConfig;

  /// The simulator reads topology routing and link capacities; the fabric
  /// must outlive the simulator. Link up/down changes through the fabric
  /// are honored at the next flow admission.
  FluidSim(topo::Fabric& fabric, Config cfg = {}, std::uint64_t seed = 1);

  /// Injects a flow; routing happens immediately (paths are pinned at QP
  /// creation, matching per-flow ECMP). Returns the flow id; the flow's
  /// `admitted` flag is false when no fabric route exists.
  FlowId inject(const FlowSpec& spec);

  /// Predicts the path a spec would take without injecting it — the
  /// controller's "hash simulator" entry point.
  std::optional<std::vector<topo::LinkId>> predict_path(const FlowSpec& spec) const;

  /// Runs until all injected flows complete (or `until`, if given).
  void run(core::Seconds until = 1e18);

  /// Runs until every flow in `watch` has completed (or `until`). Lets a
  /// measurement finish while long-lived background flows keep running.
  void run_watch(std::span<const FlowId> watch, core::Seconds until = 1e18);

  /// True when no active or pending flows remain.
  bool idle() const { return active_.empty() && pending_.empty(); }

  core::Seconds now() const { return now_; }
  const FlowState& flow(FlowId id) const { return flows_[id]; }
  std::size_t flow_count() const { return flows_.size(); }

  /// Current fluid rate of a flow (0 once finished) — the transport-layer
  /// ms-level QP rate monitor samples this.
  double current_rate(FlowId id) const { return flows_[id].rate; }

  const LinkStats& link_stats(topo::LinkId id) const { return stats_[id]; }

  /// Instantaneous per-hop forwarding latency (INT view).
  core::Seconds hop_latency(topo::LinkId id) const;

  /// Multiplies a link's effective capacity by `factor` (< 1 models a
  /// degraded optical module / broken PCIe lane). factor <= 0 blocks the
  /// link for new rate allocation while keeping it routable, modelling a
  /// silent blackhole.
  void degrade_link(topo::LinkId id, double factor);

  /// Removes all finished-flow bookkeeping but keeps counters; long
  /// campaigns call this between iterations to bound memory.
  void recycle_finished();

  /// Resets ECN/PFC/byte counters (e.g. between controller rounds).
  void reset_stats();

  /// Total bytes still in flight.
  core::Bytes backlog() const;

  const topo::Fabric& fabric() const { return fabric_; }

 private:
  void run_impl(core::Seconds until, std::span<const FlowId> watch);
  bool all_finished(std::span<const FlowId> watch) const;
  void admit(FlowId id);
  void recompute_rates();
  void accumulate(core::Seconds dt);
  double effective_capacity(topo::LinkId id) const;

  topo::Fabric& fabric_;
  Router router_;
  Config cfg_;
  core::Rng rng_;
  core::Seconds now_ = 0.0;

  std::vector<FlowState> flows_;
  std::vector<FlowId> active_;
  // Pending arrivals sorted by start time (min-heap by start).
  std::vector<FlowId> pending_;

  std::vector<LinkStats> stats_;
  std::vector<double> degrade_;
  // Scratch, sized to link count: demand and current overload per link.
  std::vector<double> link_demand_;
  std::vector<double> link_overload_;
  std::vector<double> link_rate_;  ///< Allocated rate sum per link.
};

}  // namespace astral::net
