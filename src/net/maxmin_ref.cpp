#include "net/maxmin_ref.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace astral::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct LinkScratch {
  double remcap = 0.0;
  int unfrozen = 0;
  std::vector<std::size_t> members;  // indices into paths
};

std::unordered_map<topo::LinkId, LinkScratch>& scratch_map() {
  static thread_local std::unordered_map<topo::LinkId, LinkScratch> scratch;
  return scratch;
}

std::unordered_map<topo::LinkId, double>& demand_map() {
  static thread_local std::unordered_map<topo::LinkId, double> demand;
  return demand;
}

std::unordered_map<topo::LinkId, double>& overload_map() {
  static thread_local std::unordered_map<topo::LinkId, double> overload;
  return overload;
}
}  // namespace

void MaxMinRef::solve(const std::vector<std::vector<topo::LinkId>>& paths,
                      const std::vector<double>& capacity,
                      std::vector<double>& rates) {
  auto& scratch = scratch_map();
  auto& demand = demand_map();
  auto& overload = overload_map();
  scratch.clear();
  demand.clear();
  overload.clear();
  rates.assign(paths.size(), 0.0);

  for (std::size_t ai = 0; ai < paths.size(); ++ai) {
    double prefix = kInf;
    for (topo::LinkId l : paths[ai]) {
      double cap_l = capacity[l];
      auto [it, inserted] = scratch.try_emplace(l);
      auto& s = it->second;
      if (inserted) s.remcap = cap_l;
      s.unfrozen += 1;
      s.members.push_back(ai);
      demand[l] += prefix == kInf ? cap_l : prefix;
      prefix = std::min(prefix, cap_l);
    }
  }
  for (auto& [l, s] : scratch) {
    double cap = capacity[l];
    overload[l] = cap > 0 ? demand[l] / cap : (demand[l] > 0 ? 1e9 : 0.0);
  }

  std::size_t frozen = 0;
  static thread_local std::vector<char> is_frozen;
  is_frozen.assign(paths.size(), 0);
  while (frozen < paths.size()) {
    // Find the most constrained link.
    double best_share = kInf;
    LinkScratch* best = nullptr;
    for (auto& [l, s] : scratch) {
      if (s.unfrozen == 0) continue;
      double share = s.remcap > 0 ? s.remcap / s.unfrozen : 0.0;
      if (share < best_share) {
        best_share = share;
        best = &s;
      }
    }
    if (best == nullptr) break;
    if (!std::isfinite(best_share)) best_share = 0.0;
    for (std::size_t ai : best->members) {
      if (is_frozen[ai]) continue;
      is_frozen[ai] = 1;
      ++frozen;
      rates[ai] = best_share;
      for (topo::LinkId l : paths[ai]) {
        auto& s = scratch[l];
        s.remcap -= best_share;
        s.unfrozen -= 1;
      }
    }
  }
}

double MaxMinRef::last_demand(topo::LinkId l) {
  auto it = demand_map().find(l);
  return it == demand_map().end() ? 0.0 : it->second;
}

double MaxMinRef::last_overload(topo::LinkId l) {
  auto it = overload_map().find(l);
  return it == overload_map().end() ? 0.0 : it->second;
}

}  // namespace astral::net
