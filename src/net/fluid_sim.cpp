#include "net/fluid_sim.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "net/shard_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace astral::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap on (share, link); ties break on link id so the freeze order —
// and therefore the floating-point accumulation order — is deterministic.
struct HeapCmp {
  bool operator()(const std::pair<double, topo::LinkId>& a,
                  const std::pair<double, topo::LinkId>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};
}  // namespace

FluidSim::FluidSim(topo::Fabric& fabric, Config cfg, std::uint64_t seed)
    : fabric_(fabric), router_(fabric), cfg_(cfg), rng_(seed) {
  const std::size_t nlinks = fabric_.topo().link_count();
  stats_.resize(nlinks);
  degrade_.assign(nlinks, 1.0);
  effcap_.resize(nlinks);
  for (std::size_t l = 0; l < nlinks; ++l) {
    effcap_[l] = fabric_.topo().link(static_cast<topo::LinkId>(l)).capacity;
  }
  link_demand_.assign(nlinks, 0.0);
  link_overload_.assign(nlinks, 0.0);
  link_rate_.assign(nlinks, 0.0);
  members_.resize(nlinks);
  touch_epoch_.assign(nlinks, 0);
  remcap_.assign(nlinks, 0.0);
  unfrozen_.assign(nlinks, 0);
  is_live_.assign(nlinks, 0);
  mark_epoch_.assign(nlinks, 0);
  mark_count_.assign(nlinks, 0);
  changed_epoch_mark_.assign(nlinks, 0);
  shard_ = std::make_unique<ShardSolver>(*this);
}

FluidSim::~FluidSim() = default;

void FluidSim::set_shard_domains(std::vector<std::int32_t> domains) {
  shard_->set_domains(std::move(domains));
}

std::size_t FluidSim::solver_shard_count() const { return shard_->shard_count(); }

std::uint64_t FluidSim::solver_reconcile_passes() const {
  return shard_->reconcile_passes();
}

void FluidSim::debug_set_epoch_counters(std::uint64_t value) {
  mark_epoch_counter_ = value;
  solve_epoch_ = value;
  changed_epoch_ = value;
  shard_->debug_set_epoch_counter(value);
}

std::optional<std::vector<topo::LinkId>> FluidSim::predict_path(const FlowSpec& spec) const {
  return router_.route(spec, router_.tuple_for(spec));
}

FlowId FluidSim::inject_impl(const FlowSpec& spec, bool fix_heap) {
  FlowState st;
  st.spec = spec;
  st.tuple = router_.tuple_for(spec);
  st.remaining = static_cast<double>(spec.size);
  auto path = router_.route(spec, st.tuple);
  if (path) {
    st.path = std::move(*path);
    st.admitted = true;
    // Membership slots are sized here so admission is allocation-free.
    st.member_pos.resize(st.path.size());
  } else {
    st.admitted = false;
    st.finish = spec.start;  // Unroutable: surfaces immediately to caller.
  }
  FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(std::move(st));
  if (flows_.back().admitted) {
    pending_.push_back(id);
    if (fix_heap) {
      std::push_heap(pending_.begin(), pending_.end(), [this](FlowId a, FlowId b) {
        return flows_[a].spec.start > flows_[b].spec.start;
      });
    }
  }
  return id;
}

FlowId FluidSim::inject(const FlowSpec& spec) { return inject_impl(spec, true); }

std::vector<FlowId> FluidSim::inject_batch(std::span<const FlowSpec> specs) {
  std::vector<FlowId> ids;
  ids.reserve(specs.size());
  const std::size_t before = pending_.size();
  for (const FlowSpec& s : specs) ids.push_back(inject_impl(s, false));
  if (pending_.size() != before) {
    std::make_heap(pending_.begin(), pending_.end(), [this](FlowId a, FlowId b) {
      return flows_[a].spec.start > flows_[b].spec.start;
    });
  }
  return ids;
}

void FluidSim::admit(FlowId id) {
  shard_->invalidate_structure();
  active_.push_back(id);
  FlowState& f = flows_[id];
  for (std::uint32_t h = 0; h < f.path.size(); ++h) {
    topo::LinkId l = f.path[h];
    f.member_pos[h] = static_cast<std::uint32_t>(members_[l].size());
    members_[l].push_back({id, h});
  }
}

void FluidSim::remove_member(FlowId id) {
  shard_->invalidate_structure();
  FlowState& f = flows_[id];
  for (std::uint32_t h = 0; h < f.path.size(); ++h) {
    auto& mem = members_[f.path[h]];
    const std::uint32_t pos = f.member_pos[h];
    const Member moved = mem.back();
    mem[pos] = moved;
    flows_[moved.flow].member_pos[moved.hop] = pos;
    mem.pop_back();
  }
}

bool FluidSim::batch_is_island(std::span<const FlowId> batch) {
  if (++mark_epoch_counter_ == 0) {
    // Counter wrapped: ancient stamps could alias it. Reset and restart
    // above the cleared value.
    std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0);
    mark_epoch_counter_ = 1;
  }
  for (FlowId id : batch) {
    for (topo::LinkId l : flows_[id].path) {
      if (mark_epoch_[l] != mark_epoch_counter_) {
        mark_epoch_[l] = mark_epoch_counter_;
        mark_count_[l] = 0;
      }
      ++mark_count_[l];
    }
  }
  for (FlowId id : batch) {
    for (topo::LinkId l : flows_[id].path) {
      if (members_[l].size() != mark_count_[l]) return false;
    }
  }
  return true;
}

void FluidSim::publish_zero(topo::LinkId l) {
  link_demand_[l] = 0.0;
  link_overload_[l] = 0.0;
  link_rate_[l] = 0.0;
}

void FluidSim::clear_live() {
  for (topo::LinkId l : live_links_) {
    publish_zero(l);
    is_live_[l] = 0;
  }
  live_links_.clear();
}

void FluidSim::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  solve_hist_ = metrics ? &metrics->histogram("fluidsim.solve_us") : nullptr;
}

void FluidSim::fill_and_freeze(std::span<const FlowId> subset) {
  using clock = std::chrono::steady_clock;
  const auto solve_t0 = solve_hist_ ? clock::now() : clock::time_point{};
  if (++solve_epoch_ == 0) {
    // Wrapped: reset both stamp families keyed by this counter.
    std::fill(touch_epoch_.begin(), touch_epoch_.end(), 0);
    for (FlowState& f : flows_) f.freeze_epoch = 0;
    solve_epoch_ = 1;
  }
  touched_scratch_.clear();
  for (FlowId id : subset) {
    FlowState& f = flows_[id];
    f.rate = 0.0;
    // Offered demand at each hop is the prefix-min of upstream link
    // capacities: a degraded downlink sees traffic arriving at full
    // upstream rate, which is what triggers PFC back-pressure.
    double prefix = kInf;
    for (topo::LinkId l : f.path) {
      if (touch_epoch_[l] != solve_epoch_) {
        touch_epoch_[l] = solve_epoch_;
        remcap_[l] = effcap_[l];
        unfrozen_[l] = 0;
        link_demand_[l] = 0.0;
        link_rate_[l] = 0.0;
        touched_scratch_.push_back(l);
        if (!is_live_[l]) {
          is_live_[l] = 1;
          live_links_.push_back(l);
        }
      }
      unfrozen_[l] += 1;
      const double cap_l = effcap_[l];
      link_demand_[l] += prefix == kInf ? cap_l : prefix;
      prefix = std::min(prefix, cap_l);
    }
  }

  heap_.clear();
  for (topo::LinkId l : touched_scratch_) {
    const double cap = effcap_[l];
    link_overload_[l] =
        cap > 0 ? link_demand_[l] / cap : (link_demand_[l] > 0 ? 1e9 : 0.0);
    stats_[l].peak_overload = std::max(stats_[l].peak_overload, link_overload_[l]);
    if (unfrozen_[l] > 0) heap_.emplace_back(share_of(l), l);
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});

  // Progressive filling: repeatedly freeze the most constrained link's
  // members at its fair share. The heap is lazy — links whose
  // remcap/unfrozen changed during a level get one fresh entry each
  // (deduplicated via an epoch-stamped set, so a wave of 10K flows
  // crossing 500 links pushes 500 entries, not 50K), and popped entries
  // whose share no longer matches the link's current value are discarded.
  std::size_t frozen = 0;
  while (frozen < subset.size() && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    const auto [share, l] = heap_.back();
    heap_.pop_back();
    if (unfrozen_[l] == 0) continue;
    if (share != share_of(l)) continue;  // stale: a newer entry exists
    const double level = std::isfinite(share) ? share : 0.0;
    if (++changed_epoch_ == 0) {
      std::fill(changed_epoch_mark_.begin(), changed_epoch_mark_.end(), 0);
      changed_epoch_ = 1;
    }
    changed_scratch_.clear();
    for (const Member m : members_[l]) {
      FlowState& f = flows_[m.flow];
      if (f.freeze_epoch == solve_epoch_) continue;
      f.freeze_epoch = solve_epoch_;
      ++frozen;
      f.rate = level;
      for (topo::LinkId pl : f.path) {
        remcap_[pl] -= level;
        unfrozen_[pl] -= 1;
        link_rate_[pl] += level;
        if (changed_epoch_mark_[pl] != changed_epoch_) {
          changed_epoch_mark_[pl] = changed_epoch_;
          changed_scratch_.push_back(pl);
        }
      }
    }
    for (topo::LinkId pl : changed_scratch_) {
      if (pl == l || unfrozen_[pl] == 0) continue;
      heap_.emplace_back(share_of(pl), pl);
      std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
    }
  }
  if (solve_hist_) {
    solve_hist_->record(
        std::chrono::duration<double, std::micro>(clock::now() - solve_t0).count());
  }
}

void FluidSim::solve_full() {
  if (metrics_) metrics_->add("fluidsim.solves.full");
  if (cfg_.sharding) {
    // The sharded engine publishes rates and link state itself; record
    // one "fluidsim.solve_us" sample per full solve, matching the
    // monolithic path's cadence exactly (snapshot counts are golden).
    using clock = std::chrono::steady_clock;
    const auto t0 = solve_hist_ ? clock::now() : clock::time_point{};
    shard_->solve();
    solve_pending_ = false;
    if (solve_hist_) {
      solve_hist_->record(
          std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    }
    return;
  }
  clear_live();
  fill_and_freeze(active_);
  solve_pending_ = false;
}

void FluidSim::resolve_rates() { solve_full(); }

void FluidSim::accumulate_until(core::Seconds t) {
  const double dt = t - accumulated_until_;
  if (dt <= 0) return;
  const core::Seconds interval_start = accumulated_until_;
  accumulated_until_ = t;
  const topo::Topology& topo = fabric_.topo();
  for (topo::LinkId l : live_links_) {
    if (link_rate_[l] <= 0 && link_demand_[l] <= 0) continue;
    // Sum over member flows of rate*dt equals the link's allocated rate.
    stats_[l].bytes_forwarded += link_rate_[l] * dt / 8.0;
    if (link_rate_[l] > 0) stats_[l].busy_time += dt;
    const double cap = effcap_[l];
    if (cap > 0) stats_[l].util_time += dt * std::min(1.0, link_rate_[l] / cap);
    if (tracer_) {
      // Rates are piecewise constant over [interval_start, t]; one sample
      // at the interval start reproduces the step function exactly.
      obs::TraceKeys k;
      k.link = static_cast<std::int64_t>(l);
      tracer_->counter(obs::Track::Link, "util", interval_start,
                       cap > 0 ? std::min(1.0, link_rate_[l] / cap) : 0.0, k);
    }
    const double overload = link_overload_[l];
    if (overload > cfg_.ecn_util_threshold) {
      double excess = overload - cfg_.ecn_util_threshold;
      stats_[l].ecn_marks += static_cast<std::uint64_t>(
          std::ceil(dt * cfg_.ecn_marks_per_flow_sec * excess));
    }
    if (overload > cfg_.pfc_overload) {
      // The congested switch pauses every active upstream link: this is
      // how a single hotspot spreads (the paper's PFC-storm incident).
      topo::NodeId sw = topo.link(l).src;
      for (topo::LinkId up : topo.in_links(sw)) {
        if (link_rate_[up] > 0) {
          stats_[up].pfc_pauses += static_cast<std::uint64_t>(
              std::ceil(dt * cfg_.pfc_pauses_per_sec * (overload - cfg_.pfc_overload)));
        }
      }
    }
  }
}

bool FluidSim::all_finished(std::span<const FlowId> watch) const {
  for (FlowId id : watch) {
    if (flows_[id].admitted && flows_[id].finish < 0 && !flows_[id].aborted) {
      return false;
    }
  }
  return true;
}

void FluidSim::run(core::Seconds until) { run_impl(until, {}); }

void FluidSim::run_watch(std::span<const FlowId> watch, core::Seconds until) {
  run_impl(until, watch);
}

void FluidSim::run_impl(core::Seconds until, std::span<const FlowId> watch) {
  auto pending_cmp = [this](FlowId a, FlowId b) {
    return flows_[a].spec.start > flows_[b].spec.start;
  };
  while (true) {
    // Admit everything that has started, as one batch (same-start waves
    // from collectives collapse into a single solve).
    admitted_batch_.clear();
    while (!pending_.empty() && flows_[pending_.front()].spec.start <= now_ + 1e-15) {
      std::pop_heap(pending_.begin(), pending_.end(), pending_cmp);
      FlowId id = pending_.back();
      pending_.pop_back();
      admit(id);
      admitted_batch_.push_back(id);
    }
    if (!admitted_batch_.empty()) {
      if (!solve_pending_ && batch_is_island(admitted_batch_)) {
        // Arrivals land on links nobody else uses: solve just the wave,
        // existing water-filling levels stay valid.
        if (metrics_) metrics_->add("fluidsim.solves.island");
        fill_and_freeze(admitted_batch_);
      } else {
        solve_pending_ = true;
      }
    }
    if (!watch.empty() && all_finished(watch)) return;
    if (active_.empty()) {
      if (pending_.empty()) {
        if (is_bounded(until) && now_ < until) now_ = until;
        accumulated_until_ = std::max(accumulated_until_, now_);
        return;
      }
      core::Seconds next = flows_[pending_.front()].spec.start;
      if (next > until) {
        now_ = until;
        accumulated_until_ = std::max(accumulated_until_, now_);
        return;
      }
      now_ = next;
      accumulated_until_ = std::max(accumulated_until_, now_);
      continue;
    }
    if (solve_pending_) solve_full();
    // Next completion.
    double min_dt = kInf;
    for (FlowId id : active_) {
      const FlowState& f = flows_[id];
      if (f.rate > 0) min_dt = std::min(min_dt, f.remaining * 8.0 / f.rate);
    }
    double dt_arrival = pending_.empty() ? kInf : flows_[pending_.front()].spec.start - now_;
    double dt_until = until - now_;
    double dt = std::min({min_dt, dt_arrival, dt_until});
    if (!std::isfinite(std::min(min_dt, dt_arrival)) && !is_bounded(until)) {
      // Every active flow is stalled (blocked links) and nothing else is
      // due: a fail-hang. A bounded run integrates the stall up to its
      // deadline below; with no deadline there is no instant to park at,
      // so return with the clock where it is — a caller can then fail
      // over (reroute_flows / abort_flow) and resume.
      return;
    }
    dt = std::max(dt, 0.0);
    accumulate_until(now_ + dt);
    now_ += dt;
    for (FlowId id : active_) flows_[id].remaining -= flows_[id].rate * dt / 8.0;

    // Complete flows within the epsilon batch window (symmetric
    // collectives finish whole waves at once).
    completed_batch_.clear();
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      FlowState& f = flows_[active_[i]];
      bool done = f.rate > 0 && f.remaining * 8.0 / f.rate <= cfg_.completion_epsilon;
      if (done || f.remaining <= 1e-6) {
        f.remaining = 0.0;
        f.rate = 0.0;
        f.finish = now_;
        completed_batch_.push_back(active_[i]);
      } else {
        active_[w++] = active_[i];
      }
    }
    active_.resize(w);
    if (!completed_batch_.empty()) {
      if (metrics_) metrics_->add("fluidsim.flows.completed", completed_batch_.size());
      if (tracer_) {
        for (FlowId id : completed_batch_) {
          const FlowState& f = flows_[id];
          obs::TraceKeys k;
          k.flow = static_cast<std::int64_t>(id);
          k.qp = f.spec.tag;
          tracer_->span(obs::Track::Flow, "flow", f.spec.start,
                        now_ - f.spec.start, k, static_cast<double>(f.spec.size));
        }
      }
      for (FlowId id : completed_batch_) remove_member(id);
      if (active_.empty()) {
        // Fabric went idle: publish zero overloads so the INT/pingmesh
        // view does not report phantom queueing.
        clear_live();
      } else {
        // If the finished wave shared no link with surviving flows (its
        // member lists are empty now), survivors keep their rates: just
        // retire the wave's links from the published view.
        bool detached = true;
        for (FlowId id : completed_batch_) {
          for (topo::LinkId l : flows_[id].path) {
            if (!members_[l].empty()) {
              detached = false;
              break;
            }
          }
          if (!detached) break;
        }
        if (detached) {
          for (FlowId id : completed_batch_) {
            for (topo::LinkId l : flows_[id].path) publish_zero(l);
          }
        } else {
          solve_pending_ = true;
        }
      }
    }
    if (now_ >= until) return;
  }
}

core::Seconds FluidSim::hop_latency(topo::LinkId id) const {
  double overload = link_overload_[id];
  double queue = overload > 1.0
                     ? cfg_.max_queue_delay * std::min(1.0, overload - 1.0)
                     : 0.0;
  return cfg_.base_hop_latency + queue;
}

void FluidSim::degrade_link(topo::LinkId id, double factor) {
  // Charge the elapsed interval at pre-degradation overloads before the
  // rate structure changes; otherwise ECN/PFC/byte counters for the old
  // interval would be computed with post-degradation state.
  accumulate_until(now_);
  degrade_[id] = std::max(0.0, factor);
  effcap_[id] = fabric_.topo().link(id).capacity * degrade_[id];
  shard_->invalidate_caps();
  if (!active_.empty()) solve_full();
}

void FluidSim::set_link_up(topo::LinkId id, bool up) {
  // Charge the elapsed interval before the rate structure changes, as in
  // degrade_link.
  accumulate_until(now_);
  fabric_.topo().set_link_state(id, up);
  effcap_[id] = up ? fabric_.topo().link(id).capacity * degrade_[id] : 0.0;
  shard_->invalidate_caps();
  if (!active_.empty()) solve_full();
}

FluidSim::RerouteReport FluidSim::reroute_flows() {
  RerouteReport rep;
  accumulate_until(now_);
  topo::Topology& topo = fabric_.topo();
  auto path_dead = [&](const FlowState& f) {
    for (topo::LinkId l : f.path) {
      if (!topo.link(l).up || effcap_[l] <= 0.0) return true;
    }
    return false;
  };
  // The router skips down links but cannot see silent blackholes (up,
  // zero effective capacity). Mask them down for the duration of the
  // reroute pass so re-resolution steers around them, then restore:
  // degrade_link's contract keeps a blackholed link routable for traffic
  // that has not been explicitly failed over.
  std::vector<topo::LinkId> masked;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    if (topo.link(id).up && effcap_[id] <= 0.0) {
      topo.set_link_state(id, false);
      masked.push_back(id);
    }
  }
  auto path_alive = [&](const std::vector<topo::LinkId>& path) {
    for (topo::LinkId l : path) {
      if (effcap_[l] <= 0.0) return false;
    }
    return true;
  };

  for (FlowId id : active_) {
    FlowState& f = flows_[id];
    if (f.path.empty() || !path_dead(f)) continue;
    remove_member(id);
    f.rate = 0.0;
    auto path = router_.route(f.spec, f.tuple);
    if (path && path_alive(*path)) {
      f.path = std::move(*path);
      f.member_pos.assign(f.path.size(), 0);
      for (std::uint32_t h = 0; h < f.path.size(); ++h) {
        topo::LinkId l = f.path[h];
        f.member_pos[h] = static_cast<std::uint32_t>(members_[l].size());
        members_[l].push_back({id, h});
      }
      rep.rerouted.push_back(id);
    } else {
      f.path.clear();
      f.member_pos.clear();
      rep.stranded.push_back(id);
    }
  }

  // Pending flows pinned their paths at injection; refresh dead ones so
  // they are not admitted onto a link that died while they queued.
  for (FlowId id : pending_) {
    FlowState& f = flows_[id];
    if (f.path.empty() || !path_dead(f)) continue;
    auto path = router_.route(f.spec, f.tuple);
    if (path && path_alive(*path)) {
      f.path = std::move(*path);
      f.member_pos.assign(f.path.size(), 0);
      rep.rerouted.push_back(id);
    } else {
      f.path.clear();
      f.member_pos.clear();
      rep.stranded.push_back(id);
    }
  }

  for (topo::LinkId l : masked) topo.set_link_state(l, true);

  if (metrics_) {
    metrics_->add("fluidsim.flows.rerouted", rep.rerouted.size());
    metrics_->add("fluidsim.flows.stranded", rep.stranded.size());
  }
  if (tracer_) {
    for (FlowId id : rep.rerouted) {
      obs::TraceKeys k;
      k.flow = static_cast<std::int64_t>(id);
      tracer_->instant(obs::Track::Flow, "flow.rerouted", now_, k);
    }
    for (FlowId id : rep.stranded) {
      obs::TraceKeys k;
      k.flow = static_cast<std::int64_t>(id);
      tracer_->instant(obs::Track::Flow, "flow.stranded", now_, k);
    }
  }

  if (!active_.empty() && !(rep.rerouted.empty() && rep.stranded.empty())) {
    solve_full();
  }
  return rep;
}

void FluidSim::abort_flow(FlowId id) {
  FlowState& f = flows_[id];
  if (!f.admitted || f.finish >= 0 || f.aborted) return;
  accumulate_until(now_);
  f.aborted = true;
  f.rate = 0.0;
  if (metrics_) metrics_->add("fluidsim.flows.aborted");
  if (tracer_) {
    obs::TraceKeys k;
    k.flow = static_cast<std::int64_t>(id);
    k.qp = f.spec.tag;
    // A pending flow can be aborted before its start; clamp the span so
    // the duration stays non-negative.
    const core::Seconds start = std::min(f.spec.start, now_);
    tracer_->span(obs::Track::Flow, "flow.aborted", start, now_ - start, k,
                  static_cast<double>(f.spec.size));
  }
  auto it = std::find(active_.begin(), active_.end(), id);
  if (it != active_.end()) {
    if (!f.path.empty()) remove_member(id);
    // The swap below reorders active_ even for path-less flows, and the
    // sharded solver caches that order.
    shard_->invalidate_structure();
    *it = active_.back();
    active_.pop_back();
    if (active_.empty()) {
      clear_live();
    } else {
      solve_full();
    }
    return;
  }
  auto p = std::find(pending_.begin(), pending_.end(), id);
  if (p != pending_.end()) {
    pending_.erase(p);
    std::make_heap(pending_.begin(), pending_.end(), [this](FlowId a, FlowId b) {
      return flows_[a].spec.start > flows_[b].spec.start;
    });
  }
}

void FluidSim::recycle_finished() {
  for (auto& f : flows_) {
    if ((f.finish >= 0 || f.aborted) && !f.path.empty()) {
      f.path.clear();
      f.path.shrink_to_fit();
      f.member_pos.clear();
      f.member_pos.shrink_to_fit();
    }
  }
}

void FluidSim::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

core::Bytes FluidSim::backlog() const {
  double total = 0.0;
  for (FlowId id : active_) total += flows_[id].remaining;
  for (FlowId id : pending_) total += flows_[id].remaining;
  return static_cast<core::Bytes>(total);
}

}  // namespace astral::net
