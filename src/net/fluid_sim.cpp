#include "net/fluid_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace astral::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FluidSim::FluidSim(topo::Fabric& fabric, Config cfg, std::uint64_t seed)
    : fabric_(fabric), router_(fabric), cfg_(cfg), rng_(seed) {
  const std::size_t nlinks = fabric_.topo().link_count();
  stats_.resize(nlinks);
  degrade_.assign(nlinks, 1.0);
  link_demand_.assign(nlinks, 0.0);
  link_overload_.assign(nlinks, 0.0);
  link_rate_.assign(nlinks, 0.0);
}

double FluidSim::effective_capacity(topo::LinkId id) const {
  return fabric_.topo().link(id).capacity * degrade_[id];
}

std::optional<std::vector<topo::LinkId>> FluidSim::predict_path(const FlowSpec& spec) const {
  return router_.route(spec, router_.tuple_for(spec));
}

FlowId FluidSim::inject(const FlowSpec& spec) {
  FlowState st;
  st.spec = spec;
  st.tuple = router_.tuple_for(spec);
  st.remaining = static_cast<double>(spec.size);
  auto path = router_.route(spec, st.tuple);
  if (path) {
    st.path = std::move(*path);
    st.admitted = true;
  } else {
    st.admitted = false;
    st.finish = spec.start;  // Unroutable: surfaces immediately to caller.
  }
  FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(std::move(st));
  if (flows_.back().admitted) {
    pending_.push_back(id);
    std::push_heap(pending_.begin(), pending_.end(), [this](FlowId a, FlowId b) {
      return flows_[a].spec.start > flows_[b].spec.start;
    });
  }
  return id;
}

void FluidSim::admit(FlowId id) { active_.push_back(id); }

void FluidSim::recompute_rates() {
  // Progressive filling (max-min fairness). Scratch state is rebuilt each
  // call; with path lengths <= 7 this is linear in active flows.
  struct LinkScratch {
    double remcap = 0.0;
    int unfrozen = 0;
    std::vector<std::size_t> members;  // indices into active_
  };
  static thread_local std::unordered_map<topo::LinkId, LinkScratch> scratch;
  scratch.clear();

  std::fill(link_demand_.begin(), link_demand_.end(), 0.0);
  std::fill(link_overload_.begin(), link_overload_.end(), 0.0);
  std::fill(link_rate_.begin(), link_rate_.end(), 0.0);

  for (std::size_t ai = 0; ai < active_.size(); ++ai) {
    FlowState& f = flows_[active_[ai]];
    f.rate = 0.0;
    // Offered demand at each hop is the prefix-min of upstream link
    // capacities: a degraded downlink sees traffic arriving at full
    // upstream rate, which is what triggers PFC back-pressure.
    double prefix = kInf;
    for (topo::LinkId l : f.path) {
      double cap_l = effective_capacity(l);
      auto [it, inserted] = scratch.try_emplace(l);
      auto& s = it->second;
      if (inserted) s.remcap = cap_l;
      s.unfrozen += 1;
      s.members.push_back(ai);
      link_demand_[l] += prefix == kInf ? cap_l : prefix;
      prefix = std::min(prefix, cap_l);
    }
  }
  for (auto& [l, s] : scratch) {
    double cap = effective_capacity(l);
    link_overload_[l] = cap > 0 ? link_demand_[l] / cap : (link_demand_[l] > 0 ? 1e9 : 0.0);
    stats_[l].peak_overload = std::max(stats_[l].peak_overload, link_overload_[l]);
  }

  std::size_t frozen = 0;
  static thread_local std::vector<char> is_frozen;
  is_frozen.assign(active_.size(), 0);
  while (frozen < active_.size()) {
    // Find the most constrained link.
    double best_share = kInf;
    LinkScratch* best = nullptr;
    for (auto& [l, s] : scratch) {
      if (s.unfrozen == 0) continue;
      double share = s.remcap > 0 ? s.remcap / s.unfrozen : 0.0;
      if (share < best_share) {
        best_share = share;
        best = &s;
      }
    }
    if (best == nullptr) break;
    if (!std::isfinite(best_share)) best_share = 0.0;
    for (std::size_t ai : best->members) {
      if (is_frozen[ai]) continue;
      is_frozen[ai] = 1;
      ++frozen;
      FlowState& f = flows_[active_[ai]];
      f.rate = best_share;
      for (topo::LinkId l : f.path) {
        auto& s = scratch[l];
        s.remcap -= best_share;
        s.unfrozen -= 1;
        link_rate_[l] += best_share;
      }
    }
  }
}

void FluidSim::accumulate(core::Seconds dt) {
  if (dt <= 0) return;
  for (FlowId id : active_) {
    const FlowState& f = flows_[id];
    if (f.rate <= 0) continue;
    for (topo::LinkId l : f.path) {
      stats_[l].bytes_forwarded += f.rate * dt / 8.0;
    }
  }
  const topo::Topology& topo = fabric_.topo();
  for (std::size_t l = 0; l < link_rate_.size(); ++l) {
    double cap = effective_capacity(static_cast<topo::LinkId>(l));
    if (link_rate_[l] <= 0 && link_demand_[l] <= 0) continue;
    if (link_rate_[l] > 0) stats_[l].busy_time += dt;
    if (cap > 0) stats_[l].util_time += dt * std::min(1.0, link_rate_[l] / cap);
    double overload = link_overload_[l];
    if (overload > cfg_.ecn_util_threshold) {
      double excess = overload - cfg_.ecn_util_threshold;
      stats_[l].ecn_marks += static_cast<std::uint64_t>(
          std::ceil(dt * cfg_.ecn_marks_per_flow_sec * excess));
    }
    if (overload > cfg_.pfc_overload) {
      // The congested switch pauses every active upstream link: this is
      // how a single hotspot spreads (the paper's PFC-storm incident).
      topo::NodeId sw = topo.link(static_cast<topo::LinkId>(l)).src;
      for (topo::LinkId up : topo.in_links(sw)) {
        if (link_rate_[up] > 0) {
          stats_[up].pfc_pauses += static_cast<std::uint64_t>(
              std::ceil(dt * cfg_.pfc_pauses_per_sec * (overload - cfg_.pfc_overload)));
        }
      }
    }
  }
}

bool FluidSim::all_finished(std::span<const FlowId> watch) const {
  for (FlowId id : watch) {
    if (flows_[id].admitted && flows_[id].finish < 0) return false;
  }
  return true;
}

void FluidSim::run(core::Seconds until) { run_impl(until, {}); }

void FluidSim::run_watch(std::span<const FlowId> watch, core::Seconds until) {
  run_impl(until, watch);
}

void FluidSim::run_impl(core::Seconds until, std::span<const FlowId> watch) {
  auto pending_cmp = [this](FlowId a, FlowId b) {
    return flows_[a].spec.start > flows_[b].spec.start;
  };
  bool dirty = true;
  while (true) {
    // Admit everything that has started.
    bool admitted_any = false;
    while (!pending_.empty() && flows_[pending_.front()].spec.start <= now_ + 1e-15) {
      std::pop_heap(pending_.begin(), pending_.end(), pending_cmp);
      admit(pending_.back());
      pending_.pop_back();
      admitted_any = true;
    }
    if (admitted_any) dirty = true;
    if (!watch.empty() && all_finished(watch)) return;
    if (active_.empty()) {
      if (pending_.empty()) {
        if (until < 1e17 && now_ < until) now_ = until;
        return;
      }
      core::Seconds next = flows_[pending_.front()].spec.start;
      if (next > until) {
        now_ = until;
        return;
      }
      now_ = next;
      continue;
    }
    if (dirty) {
      recompute_rates();
      dirty = false;
    }
    // Next completion.
    double min_dt = kInf;
    for (FlowId id : active_) {
      const FlowState& f = flows_[id];
      if (f.rate > 0) min_dt = std::min(min_dt, f.remaining * 8.0 / f.rate);
    }
    double dt_arrival = pending_.empty() ? kInf : flows_[pending_.front()].spec.start - now_;
    double dt_until = until - now_;
    double dt = std::min({min_dt, dt_arrival, dt_until});
    if (!std::isfinite(dt)) {
      // Every active flow is stalled (blocked links) and nothing else is
      // due: a fail-hang. Park the clock at `until` and stop.
      if (until < 1e17) now_ = until;
      return;
    }
    dt = std::max(dt, 0.0);
    accumulate(dt);
    now_ += dt;
    for (FlowId id : active_) flows_[id].remaining -= flows_[id].rate * dt / 8.0;

    // Complete flows within the epsilon batch window (symmetric
    // collectives finish whole waves at once).
    bool finished_any = false;
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      FlowState& f = flows_[active_[i]];
      bool done = f.rate > 0 && f.remaining * 8.0 / f.rate <= cfg_.completion_epsilon;
      if (done || f.remaining <= 1e-6) {
        f.remaining = 0.0;
        f.rate = 0.0;
        f.finish = now_;
        finished_any = true;
      } else {
        active_[w++] = active_[i];
      }
    }
    active_.resize(w);
    if (finished_any) dirty = true;
    if (now_ >= until) return;
  }
}

core::Seconds FluidSim::hop_latency(topo::LinkId id) const {
  double overload = link_overload_[id];
  double queue = overload > 1.0
                     ? cfg_.max_queue_delay * std::min(1.0, overload - 1.0)
                     : 0.0;
  return cfg_.base_hop_latency + queue;
}

void FluidSim::degrade_link(topo::LinkId id, double factor) {
  degrade_[id] = std::max(0.0, factor);
  if (!active_.empty()) recompute_rates();
}

void FluidSim::recycle_finished() {
  for (auto& f : flows_) {
    if (f.finish >= 0) {
      f.path.clear();
      f.path.shrink_to_fit();
    }
  }
}

void FluidSim::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

core::Bytes FluidSim::backlog() const {
  double total = 0.0;
  for (FlowId id : active_) total += flows_[id].remaining;
  for (FlowId id : pending_) total += flows_[id].remaining;
  return static_cast<core::Bytes>(total);
}

}  // namespace astral::net
