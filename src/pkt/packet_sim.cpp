#include "pkt/packet_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace astral::pkt {

using core::Bytes;
using core::Seconds;

struct PacketSim::Packet {
  std::uint32_t flow = 0;
  Bytes size = 0;
  std::uint16_t hop = 0;  ///< Index into the flow's path.
  bool ecn_marked = false;
  bool last = false;
};

struct PacketSim::Port {
  std::deque<Packet> q;
  Bytes queued = 0;
  bool busy = false;
  int pause_refs = 0;       ///< >0: a downstream ingress asserted PFC.
  bool xoff_asserted = false;  ///< This queue has paused its upstreams.

  bool paused() const { return pause_refs > 0; }
};

struct PacketSim::Flow {
  PktFlowState st;
  Bytes to_send = 0;
  Seconds last_cut = -1e18;
  bool done_sending = false;
};

PacketSim::PacketSim(topo::Fabric& fabric, PacketSimConfig cfg)
    : fabric_(fabric), router_(fabric), cfg_(cfg), rng_(cfg.seed) {
  ports_.resize(fabric_.topo().link_count());
}

PacketSim::~PacketSim() = default;

Seconds PacketSim::now() const { return queue_.now(); }

const PktFlowState& PacketSim::flow(net::FlowId id) const { return flows_[id].st; }

std::size_t PacketSim::flow_count() const { return flows_.size(); }

Bytes PacketSim::queue_depth(topo::LinkId link) const { return ports_[link].queued; }

net::FlowId PacketSim::inject(const net::FlowSpec& spec) {
  Flow f;
  f.st.spec = spec;
  f.st.tuple = router_.tuple_for(spec);
  f.to_send = spec.size;
  auto path = router_.route(spec, f.st.tuple);
  if (path) {
    f.st.path = std::move(*path);
    f.st.admitted = true;
    // DCQCN sources start at line rate (the first link is the NIC port).
    f.st.rate = fabric_.topo().link(f.st.path.front()).capacity;
  } else {
    f.st.finish = spec.start;
  }
  auto id = static_cast<net::FlowId>(flows_.size());
  flows_.push_back(std::move(f));
  if (flows_.back().st.admitted) {
    ++active_flows_;
    queue_.schedule_at(spec.start, [this, id] { pace_next_packet(id); });
    queue_.schedule_at(spec.start + cfg_.increase_interval,
                       [this, id] { schedule_increase(id); });
  }
  return id;
}

void PacketSim::pace_next_packet(std::size_t flow_idx) {
  Flow& f = flows_[flow_idx];
  if (f.to_send == 0) {
    f.done_sending = true;
    return;
  }
  std::size_t first_port = f.st.path.front();
  Packet pkt;
  pkt.flow = static_cast<std::uint32_t>(flow_idx);
  pkt.size = std::min<Bytes>(cfg_.mtu, f.to_send);
  pkt.hop = 0;
  pkt.last = pkt.size == f.to_send;
  // Host-side backpressure: a full NIC queue delays the source instead
  // of dropping.
  if (ports_[first_port].queued + pkt.size > cfg_.queue_capacity) {
    queue_.schedule_in(core::transfer_time(pkt.size, f.st.rate),
                       [this, flow_idx] { pace_next_packet(flow_idx); });
    return;
  }
  f.to_send -= pkt.size;
  ++stats_.packets_sent;
  enqueue(first_port, pkt);
  Seconds gap = core::transfer_time(pkt.size, f.st.rate);
  queue_.schedule_in(gap, [this, flow_idx] { pace_next_packet(flow_idx); });
}

void PacketSim::enqueue(std::size_t port_idx, Packet pkt) {
  Port& port = ports_[port_idx];
  if (port.queued + pkt.size > cfg_.queue_capacity) {
    ++stats_.packets_dropped;  // PFC normally prevents this.
    return;
  }
  // RED-on-ECN marking ramp.
  if (port.queued > cfg_.ecn_kmin) {
    double frac = static_cast<double>(port.queued - cfg_.ecn_kmin) /
                  static_cast<double>(std::max<Bytes>(1, cfg_.ecn_kmax - cfg_.ecn_kmin));
    double p = std::min(1.0, frac) * cfg_.ecn_pmax;
    if (rng_.chance(p)) {
      pkt.ecn_marked = true;
      ++stats_.ecn_marks;
    }
  }
  port.q.push_back(pkt);
  port.queued += pkt.size;
  update_pfc(port_idx);
  start_transmit(port_idx);
}

void PacketSim::start_transmit(std::size_t port_idx) {
  Port& port = ports_[port_idx];
  if (port.busy || port.paused() || port.q.empty()) return;
  const auto& link = fabric_.topo().link(static_cast<topo::LinkId>(port_idx));
  if (!link.up || link.capacity <= 0) return;  // dead link blackholes
  port.busy = true;
  Seconds tx = core::transfer_time(port.q.front().size, link.capacity);
  queue_.schedule_in(tx, [this, port_idx] { finish_transmit(port_idx); });
}

void PacketSim::finish_transmit(std::size_t port_idx) {
  Port& port = ports_[port_idx];
  Packet pkt = port.q.front();
  port.q.pop_front();
  port.queued -= pkt.size;
  port.busy = false;
  update_pfc(port_idx);

  const Flow& f = flows_[pkt.flow];
  bool last_hop = pkt.hop + 1 >= f.st.path.size();
  if (last_hop) {
    queue_.schedule_in(cfg_.hop_latency, [this, pkt] { deliver(pkt); });
  } else {
    Packet next = pkt;
    next.hop = static_cast<std::uint16_t>(pkt.hop + 1);
    std::size_t next_port = f.st.path[next.hop];
    queue_.schedule_in(cfg_.hop_latency,
                       [this, next_port, next] { enqueue(next_port, next); });
  }
  start_transmit(port_idx);
}

void PacketSim::deliver(const Packet& pkt) {
  Flow& f = flows_[pkt.flow];
  f.st.delivered += pkt.size;
  ++stats_.packets_delivered;
  if (pkt.ecn_marked) {
    // CNP travels back to the source after the reverse-path latency.
    Seconds rtt_back = cfg_.hop_latency * static_cast<double>(f.st.path.size());
    std::size_t idx = pkt.flow;
    queue_.schedule_in(rtt_back, [this, idx] { notify_congestion(idx); });
  }
  if (f.st.delivered >= f.st.spec.size && f.st.finish < 0) {
    f.st.finish = now();
    --active_flows_;
  }
}

void PacketSim::notify_congestion(std::size_t flow_idx) {
  Flow& f = flows_[flow_idx];
  ++f.st.ecn_feedback;
  if (f.st.finish >= 0) return;
  if (now() - f.last_cut < cfg_.cnp_min_interval) return;  // one cut per window
  f.last_cut = now();
  double line = fabric_.topo().link(f.st.path.front()).capacity;
  f.st.rate = std::max(line * cfg_.min_rate_fraction, f.st.rate * cfg_.rate_decrease);
}

void PacketSim::schedule_increase(std::size_t flow_idx) {
  Flow& f = flows_[flow_idx];
  if (f.st.finish >= 0 || f.done_sending) return;  // timer dies with the flow
  double line = fabric_.topo().link(f.st.path.front()).capacity;
  f.st.rate = std::min(line, f.st.rate + cfg_.increase_fraction * line);
  queue_.schedule_in(cfg_.increase_interval, [this, flow_idx] { schedule_increase(flow_idx); });
}

void PacketSim::update_pfc(std::size_t port_idx) {
  Port& port = ports_[port_idx];
  const auto& topo = fabric_.topo();
  topo::NodeId node = topo.link(static_cast<topo::LinkId>(port_idx)).src;
  // A host NIC queue exerts host backpressure (pace_next_packet), not PFC.
  if (topo.node(node).kind == topo::NodeKind::Host) return;

  if (!port.xoff_asserted && port.queued > cfg_.pfc_xoff) {
    port.xoff_asserted = true;
    ++stats_.pfc_pause_events;
    for (topo::LinkId up : topo.in_links(node)) ++ports_[up].pause_refs;
  } else if (port.xoff_asserted && port.queued < cfg_.pfc_xon) {
    port.xoff_asserted = false;
    ++stats_.pfc_resume_events;
    for (topo::LinkId up : topo.in_links(node)) {
      Port& upstream = ports_[up];
      if (--upstream.pause_refs == 0) start_transmit(up);
    }
  }
}

void PacketSim::run(core::Seconds until) { queue_.run(until); }

}  // namespace astral::pkt
