// Packet-granular network simulator.
//
// The paper's Seer deliberately avoids packet-level simulation for speed
// (§4.3, §5: ASTRA-sim took a day for one iteration, SimAI hours). This
// module exists for the two purposes such simulators still serve here:
// validating the fluid model's completion times on small scenarios, and
// reproducing the efficiency argument (bench/ablation_seer_vs_packet).
//
// Fidelity: store-and-forward output-queued switches, MTU-sized packets,
// RED-style ECN marking, DCQCN-like end-host rate control (multiplicative
// decrease on congestion notification, additive recovery), and per-port
// PFC (XOFF/XON thresholds pausing upstream transmitters) making the
// fabric lossless under incast. Routing is byte-identical to the fluid
// simulator via the shared net::Router.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/event_queue.h"
#include "core/rng.h"
#include "net/router.h"

namespace astral::pkt {

struct PacketSimConfig {
  core::Bytes mtu = 4096;
  core::Bytes queue_capacity = 512 * 1024;  ///< Per egress port.
  // RED-on-ECN marking ramp.
  core::Bytes ecn_kmin = 64 * 1024;
  core::Bytes ecn_kmax = 256 * 1024;
  double ecn_pmax = 0.2;
  // PFC thresholds (XOFF pauses upstream; XON resumes).
  core::Bytes pfc_xoff = 384 * 1024;
  core::Bytes pfc_xon = 192 * 1024;
  core::Seconds hop_latency = core::usec(0.6);
  // DCQCN-like rate control.
  double rate_decrease = 0.5;  ///< Multiplicative cut per CNP window.
  core::Seconds cnp_min_interval = core::usec(50.0);
  core::Seconds increase_interval = core::usec(55.0);
  double increase_fraction = 0.05;  ///< Of line rate, per interval.
  double min_rate_fraction = 0.01;
  std::uint64_t seed = 1;
};

struct PktFlowState {
  net::FlowSpec spec;
  net::FiveTuple tuple;
  std::vector<topo::LinkId> path;
  bool admitted = false;
  core::Bytes delivered = 0;
  double rate = 0.0;             ///< Current paced sending rate, bits/s.
  core::Seconds finish = -1.0;   ///< Last byte delivered; <0 while active.
  std::uint64_t ecn_feedback = 0;  ///< Congestion notifications received.
};

struct PacketSimStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t pfc_pause_events = 0;
  std::uint64_t pfc_resume_events = 0;
};

class PacketSim {
 public:
  explicit PacketSim(topo::Fabric& fabric, PacketSimConfig cfg = {});
  ~PacketSim();

  PacketSim(const PacketSim&) = delete;
  PacketSim& operator=(const PacketSim&) = delete;

  /// Injects a flow; like the fluid simulator, routing is pinned at
  /// admission and `admitted` is false when unroutable.
  net::FlowId inject(const net::FlowSpec& spec);

  /// Runs the event loop until all flows deliver or `until`.
  void run(core::Seconds until = 1e18);

  core::Seconds now() const;
  const PktFlowState& flow(net::FlowId id) const;
  std::size_t flow_count() const;
  const PacketSimStats& stats() const { return stats_; }

  /// Current depth of the egress queue feeding `link`, bytes.
  core::Bytes queue_depth(topo::LinkId link) const;

 private:
  struct Port;
  struct Packet;
  struct Flow;

  void pace_next_packet(std::size_t flow_idx);
  void enqueue(std::size_t port_idx, Packet pkt);
  void start_transmit(std::size_t port_idx);
  void finish_transmit(std::size_t port_idx);
  void deliver(const Packet& pkt);
  void notify_congestion(std::size_t flow_idx);
  void schedule_increase(std::size_t flow_idx);
  void update_pfc(std::size_t port_idx);

  topo::Fabric& fabric_;
  net::Router router_;
  PacketSimConfig cfg_;
  core::Rng rng_;
  core::EventQueue queue_;
  std::vector<Flow> flows_;
  std::vector<Port> ports_;  ///< One per directed link, same indexing.
  PacketSimStats stats_;
  int active_flows_ = 0;
};

}  // namespace astral::pkt
