#include "seer/engine.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <unordered_map>

#include "obs/trace.h"

namespace astral::seer {

const TimelineEvent* Timeline::find(int op_id) const {
  for (const auto& ev : events) {
    if (ev.op_id == op_id) return &ev;
  }
  return nullptr;
}

void Timeline::append_chrome_trace(obs::ChromeTraceBuilder& builder, int pid,
                                   std::string_view process_name) const {
  builder.process_name(pid, process_name);
  builder.thread_name(pid, 0, "exec");
  builder.thread_name(pid, 1, "comm");
  for (const auto& ev : events) {
    core::Json args = core::Json::object();
    args["op_id"] = core::Json(ev.op_id);
    args["type"] = core::Json(to_string(ev.type));
    builder.complete(pid, ev.type == OpType::Comm ? 1 : 0, ev.name, ev.start,
                     ev.duration(), std::move(args));
  }
}

core::Json Timeline::to_chrome_trace() const {
  obs::ChromeTraceBuilder builder;
  append_chrome_trace(builder);
  return builder.build();
}

double timeline_deviation(const Timeline& forecast, const Timeline& measured) {
  return core::relative_deviation(forecast.makespan, measured.makespan);
}

namespace {
// Overlap length of [a0,a1) with a set of disjoint sorted intervals.
double overlap_with(const std::vector<std::pair<double, double>>& intervals, double a0,
                    double a1) {
  double total = 0.0;
  for (const auto& [b0, b1] : intervals) {
    double lo = std::max(a0, b0);
    double hi = std::min(a1, b1);
    if (hi > lo) total += hi - lo;
    if (b0 >= a1) break;
  }
  return total;
}

// Merges possibly-adjacent busy intervals (they are produced in start
// order per stream, so they are already sorted and disjoint).
std::vector<std::pair<double, double>> merge(std::vector<std::pair<double, double>> iv) {
  std::vector<std::pair<double, double>> out;
  for (auto [s, e] : iv) {
    if (!out.empty() && s <= out.back().second + 1e-15) {
      out.back().second = std::max(out.back().second, e);
    } else {
      out.emplace_back(s, e);
    }
  }
  return out;
}
}  // namespace

Timeline SeerEngine::run(const OpGraph& graph) const {
  Timeline tl;
  const std::size_t n = graph.ops.size();
  if (n == 0) return tl;

  // id -> index and children adjacency.
  std::unordered_map<int, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[graph.ops[i].id] = i;
  std::vector<std::vector<std::size_t>> children(n);
  std::vector<int> pending_deps(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d : graph.ops[i].deps) {
      auto it = index.find(d);
      assert(it != index.end() && "graph must validate() before run()");
      children[it->second].push_back(i);
      ++pending_deps[i];
    }
  }

  constexpr int kExec = 0;
  constexpr int kComm = 1;
  auto stream_of = [&](const Operator& op) {
    return op.type == OpType::Comm ? kComm : kExec;
  };

  // Ready queues per stream, ordered by op id for determinism.
  std::priority_queue<std::pair<int, std::size_t>, std::vector<std::pair<int, std::size_t>>,
                      std::greater<>>
      ready[2];
  double stream_free[2] = {0.0, 0.0};
  // Completion events: (time, index).
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, std::greater<>>
      completions;

  std::vector<std::pair<double, double>> busy[2];
  std::size_t dispatched = 0;
  double now = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    if (pending_deps[i] == 0) ready[stream_of(graph.ops[i])].push({graph.ops[i].id, i});
  }

  auto dispatch = [&]() {
    for (int s : {kExec, kComm}) {
      // A stream runs one op at a time; dispatch when it is free "now".
      while (!ready[s].empty() && stream_free[s] <= now + 1e-18) {
        auto [id, i] = ready[s].top();
        (void)id;
        ready[s].pop();
        const Operator& op = graph.ops[i];
        double start = std::max(now, stream_free[s]);
        double dur = model_.op_time(op);
        double end = start + dur;
        stream_free[s] = end;
        busy[s].emplace_back(start, end);
        tl.events.push_back({op.id, op.name, op.type, start, end});
        completions.push({end, i});
        ++dispatched;
      }
    }
  };

  dispatch();
  while (!completions.empty()) {
    auto [t, i] = completions.top();
    completions.pop();
    now = std::max(now, t);
    for (std::size_t c : children[i]) {
      if (--pending_deps[c] == 0) ready[stream_of(graph.ops[c])].push({graph.ops[c].id, c});
    }
    // A stream that finished exactly now is free again.
    dispatch();
  }
  assert(dispatched == n && "cycle or missing dependency");

  std::sort(tl.events.begin(), tl.events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.op_id < b.op_id;
            });
  for (const auto& ev : tl.events) tl.makespan = std::max(tl.makespan, ev.end);

  std::sort(busy[kExec].begin(), busy[kExec].end());
  std::sort(busy[kComm].begin(), busy[kComm].end());
  auto exec_iv = merge(busy[kExec]);
  auto comm_iv = merge(busy[kComm]);
  for (auto [s, e] : exec_iv) tl.exec_busy += e - s;
  for (auto [s, e] : comm_iv) {
    tl.comm_busy += e - s;
    tl.exposed_comm += (e - s) - overlap_with(exec_iv, s, e);
  }
  return tl;
}

}  // namespace astral::seer
