// Operator dependency graphs (§4.3). A graph is the workflow of one
// training/inference iteration on one representative device, expressed
// as computation, memory-access and communication operators with
// dependencies — the same structure PyTorch Chakra exports, which is also
// the JSON schema we load ("converting from realistic profiling data")
// and save (the "extending with handcraft" template).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/json.h"

namespace astral::seer {

enum class OpType : std::uint8_t { Compute, Memory, Comm };

enum class CommKind : std::uint8_t {
  None,
  AllReduce,
  ReduceScatter,
  AllGather,
  AllToAll,
  SendRecv,  ///< Point-to-point (PP).
};

const char* to_string(OpType t);
const char* to_string(CommKind k);
std::optional<OpType> op_type_from(std::string_view s);
std::optional<CommKind> comm_kind_from(std::string_view s);

/// One operator. Compute ops carry `flops` (and often `mem_bytes` for the
/// weight load fused with them — the Table 1 "Mem. + Comp." rows);
/// communication ops carry `comm_bytes`, a kind and a group size.
struct Operator {
  int id = 0;
  std::string name;
  OpType type = OpType::Compute;
  std::vector<int> deps;

  double flops = 0.0;
  double mem_bytes = 0.0;
  double comm_bytes = 0.0;
  CommKind comm = CommKind::None;
  int comm_group = 1;     ///< Ranks participating in the collective.
  bool cross_dc = false;  ///< Traffic leaves the datacenter (App. B).

  /// Handcrafted execution-time override in seconds (the template's
  /// "corresponding execution time"); < 0 means "model it".
  double fixed_time = -1.0;
};

/// A validated DAG of operators.
class OpGraph {
 public:
  std::vector<Operator> ops;

  /// Checks ids are unique, deps reference existing earlier-validated
  /// ids, and the graph is acyclic. On failure returns false and sets
  /// *error when provided.
  bool validate(std::string* error = nullptr) const;

  /// Topological order (Kahn). Empty when the graph is cyclic. Ties are
  /// broken by ascending id, so the order is deterministic.
  std::vector<int> topo_order() const;

  /// Index of an op by id; -1 when absent.
  int index_of(int id) const;

  /// Serializes to the Chakra-like JSON template format.
  core::Json to_json() const;

  /// Parses the JSON format; validates. Returns nullopt on schema or
  /// validation errors (message in *error).
  static std::optional<OpGraph> from_json(const core::Json& doc, std::string* error = nullptr);

  /// Sum of a field across ops, by type.
  double total_flops() const;
  double total_comm_bytes() const;
  double total_mem_bytes() const;
};

}  // namespace astral::seer
