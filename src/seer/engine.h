// The Seer timeline engine: a discrete-event executor that turns an
// operator graph + cost model into an operator-granular timeline within
// milliseconds ("any discrete-event simulation tool can be used to
// construct the timeline", §4.3 — this is ours).
//
// The device model has two streams, matching how frameworks issue work:
//  * exec stream: compute and memory operators, in dependency order;
//  * comm stream: NCCL operators, which overlap with exec work whose
//    dependencies allow it.
// An operator starts when all dependencies finished AND its stream is
// free; ready ties dispatch by ascending id (deterministic).
#pragma once

#include <string>
#include <vector>

#include "core/json.h"
#include "core/units.h"
#include "seer/cost_model.h"
#include "seer/op_graph.h"

namespace astral::obs {
class ChromeTraceBuilder;
}  // namespace astral::obs

namespace astral::seer {

struct TimelineEvent {
  int op_id = 0;
  std::string name;
  OpType type = OpType::Compute;
  core::Seconds start = 0.0;
  core::Seconds end = 0.0;

  core::Seconds duration() const { return end - start; }
};

struct Timeline {
  std::vector<TimelineEvent> events;  ///< In start order.
  core::Seconds makespan = 0.0;
  core::Seconds exec_busy = 0.0;   ///< Compute+memory stream busy time.
  core::Seconds comm_busy = 0.0;   ///< Comm stream busy time.
  core::Seconds exposed_comm = 0.0;  ///< Comm time not hidden by exec work.

  const TimelineEvent* find(int op_id) const;

  /// Appends the timeline to a shared Chrome-trace document under process
  /// `pid` (exec stream tid 0, comm stream tid 1, both named). Campaigns
  /// use this to land a Seer forecast next to the measured run's flight
  /// recording in one Perfetto view for visual diffing.
  void append_chrome_trace(obs::ChromeTraceBuilder& builder, int pid = 0,
                           std::string_view process_name = "seer") const;

  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
  /// Routed through obs::ChromeTraceBuilder, so output is deterministic
  /// and structurally identical to the flight recorder's export.
  core::Json to_chrome_trace() const;
};

/// Relative makespan deviation between a forecast and a measurement —
/// the accuracy metric of Fig. 12.
double timeline_deviation(const Timeline& forecast, const Timeline& measured);

class SeerEngine {
 public:
  explicit SeerEngine(CostModel model) : model_(std::move(model)) {}

  const CostModel& model() const { return model_; }

  /// Executes the graph; the graph must validate().
  Timeline run(const OpGraph& graph) const;

 private:
  CostModel model_;
};

}  // namespace astral::seer
