#include "seer/op_graph.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace astral::seer {

const char* to_string(OpType t) {
  switch (t) {
    case OpType::Compute: return "comp";
    case OpType::Memory: return "mem";
    case OpType::Comm: return "comm";
  }
  return "?";
}

const char* to_string(CommKind k) {
  switch (k) {
    case CommKind::None: return "none";
    case CommKind::AllReduce: return "allreduce";
    case CommKind::ReduceScatter: return "reducescatter";
    case CommKind::AllGather: return "allgather";
    case CommKind::AllToAll: return "alltoall";
    case CommKind::SendRecv: return "sendrecv";
  }
  return "?";
}

std::optional<OpType> op_type_from(std::string_view s) {
  if (s == "comp") return OpType::Compute;
  if (s == "mem") return OpType::Memory;
  if (s == "comm") return OpType::Comm;
  return std::nullopt;
}

std::optional<CommKind> comm_kind_from(std::string_view s) {
  if (s == "none") return CommKind::None;
  if (s == "allreduce") return CommKind::AllReduce;
  if (s == "reducescatter") return CommKind::ReduceScatter;
  if (s == "allgather") return CommKind::AllGather;
  if (s == "alltoall") return CommKind::AllToAll;
  if (s == "sendrecv") return CommKind::SendRecv;
  return std::nullopt;
}

int OpGraph::index_of(int id) const {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

bool OpGraph::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::unordered_set<int> ids;
  for (const Operator& op : ops) {
    if (!ids.insert(op.id).second) return fail("duplicate op id " + std::to_string(op.id));
  }
  for (const Operator& op : ops) {
    for (int d : op.deps) {
      if (!ids.contains(d)) {
        return fail("op " + std::to_string(op.id) + " depends on unknown id " +
                    std::to_string(d));
      }
      if (d == op.id) return fail("op " + std::to_string(op.id) + " depends on itself");
    }
    if (op.type == OpType::Comm && op.comm == CommKind::None) {
      return fail("comm op " + std::to_string(op.id) + " has no comm kind");
    }
    if (op.comm_group < 1) return fail("op " + std::to_string(op.id) + " has comm_group < 1");
  }
  if (topo_order().size() != ops.size()) return fail("dependency cycle detected");
  return true;
}

std::vector<int> OpGraph::topo_order() const {
  std::unordered_map<int, int> indegree;
  std::unordered_map<int, std::vector<int>> children;
  for (const Operator& op : ops) indegree[op.id] = 0;
  for (const Operator& op : ops) {
    for (int d : op.deps) {
      if (!indegree.contains(d)) continue;  // invalid dep; validate() reports
      children[d].push_back(op.id);
      ++indegree[op.id];
    }
  }
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.push(id);
  }
  std::vector<int> order;
  order.reserve(ops.size());
  while (!ready.empty()) {
    int id = ready.top();
    ready.pop();
    order.push_back(id);
    for (int c : children[id]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (order.size() != ops.size()) return {};
  return order;
}

core::Json OpGraph::to_json() const {
  core::Json doc = core::Json::object();
  core::Json arr = core::Json::array();
  for (const Operator& op : ops) {
    core::Json j = core::Json::object();
    j["id"] = core::Json(op.id);
    j["name"] = core::Json(op.name);
    j["op"] = core::Json(to_string(op.type));
    core::Json deps = core::Json::array();
    for (int d : op.deps) deps.push_back(core::Json(d));
    j["deps"] = deps;
    if (op.flops > 0) j["flops"] = core::Json(op.flops);
    if (op.mem_bytes > 0) j["mem_bytes"] = core::Json(op.mem_bytes);
    if (op.type == OpType::Comm) {
      j["comm"] = core::Json(to_string(op.comm));
      j["comm_bytes"] = core::Json(op.comm_bytes);
      j["comm_group"] = core::Json(op.comm_group);
      if (op.cross_dc) j["cross_dc"] = core::Json(true);
    }
    if (op.fixed_time >= 0) j["time"] = core::Json(op.fixed_time);
    arr.push_back(std::move(j));
  }
  doc["ops"] = std::move(arr);
  return doc;
}

std::optional<OpGraph> OpGraph::from_json(const core::Json& doc, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<OpGraph> {
    if (error) *error = msg;
    return std::nullopt;
  };
  const core::Json& arr = doc["ops"];
  if (!arr.is_array()) return fail("missing 'ops' array");
  OpGraph g;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const core::Json& j = arr.at(i);
    Operator op;
    if (!j["id"].is_number()) return fail("op without numeric 'id'");
    op.id = static_cast<int>(j["id"].as_int());
    op.name = j.string_or("name", "op" + std::to_string(op.id));
    auto type = op_type_from(j.string_or("op", ""));
    if (!type) return fail("op " + std::to_string(op.id) + ": bad 'op' type");
    op.type = *type;
    for (const core::Json& d : j["deps"].as_array()) op.deps.push_back(static_cast<int>(d.as_int()));
    op.flops = j.number_or("flops", 0.0);
    op.mem_bytes = j.number_or("mem_bytes", 0.0);
    op.comm_bytes = j.number_or("comm_bytes", 0.0);
    op.comm_group = static_cast<int>(j.number_or("comm_group", 1.0));
    op.cross_dc = j["cross_dc"].as_bool();
    op.fixed_time = j.number_or("time", -1.0);
    if (op.type == OpType::Comm) {
      auto kind = comm_kind_from(j.string_or("comm", ""));
      if (!kind || *kind == CommKind::None) {
        return fail("comm op " + std::to_string(op.id) + ": bad 'comm' kind");
      }
      op.comm = *kind;
    }
    g.ops.push_back(std::move(op));
  }
  std::string verr;
  if (!g.validate(&verr)) return fail(verr);
  return g;
}

double OpGraph::total_flops() const {
  double s = 0;
  for (const auto& op : ops) s += op.flops;
  return s;
}

double OpGraph::total_comm_bytes() const {
  double s = 0;
  for (const auto& op : ops) s += op.comm_bytes;
  return s;
}

double OpGraph::total_mem_bytes() const {
  double s = 0;
  for (const auto& op : ops) s += op.mem_bytes;
  return s;
}

}  // namespace astral::seer
