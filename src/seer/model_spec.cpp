#include "seer/model_spec.h"

namespace astral::seer {

double ModelSpec::layer_params() const {
  const double h = hidden;
  const double kv_ratio = heads > 0 ? static_cast<double>(kv_heads) / heads : 1.0;
  // Attention: Q + out are h*h; K,V are h*h*kv_ratio each.
  double attn = h * h * (2.0 + 2.0 * kv_ratio);
  double mlp_mats = swiglu ? 3.0 : 2.0;
  double ffn = mlp_mats * h * static_cast<double>(ffn_hidden);
  if (is_moe()) ffn *= experts;
  double norms = 2.0 * h;
  return attn + ffn + norms;
}

double ModelSpec::params() const {
  double emb = static_cast<double>(vocab) * hidden;
  // Untied output head.
  return emb * 2.0 + layers * layer_params();
}

double ModelSpec::active_params() const {
  if (!is_moe()) return params();
  const double h = hidden;
  const double kv_ratio = heads > 0 ? static_cast<double>(kv_heads) / heads : 1.0;
  double attn = h * h * (2.0 + 2.0 * kv_ratio);
  double mlp_mats = swiglu ? 3.0 : 2.0;
  double ffn = mlp_mats * h * static_cast<double>(ffn_hidden) * top_k;
  double emb = static_cast<double>(vocab) * hidden;
  return emb * 2.0 + layers * (attn + ffn + 2.0 * h);
}

double ModelSpec::fwd_flops_per_token(int seq_len) const {
  // 2 FLOPs per parameter-activation MAC on the active weights, plus the
  // attention score/value term 4*s*h per layer (causal halves it; we keep
  // the standard 2*2 factor and let calibration absorb constants).
  double dense_part = 2.0 * active_params();
  double attn_quad = 4.0 * static_cast<double>(seq_len) * hidden * layers;
  return dense_part + attn_quad;
}

ModelSpec ModelSpec::gpt3_175b() {
  ModelSpec m;
  m.name = "GPT-3-175B";
  m.layers = 96;
  m.hidden = 12288;
  m.heads = 96;
  m.kv_heads = 96;
  m.ffn_hidden = 4 * 12288;
  m.vocab = 50257;
  m.swiglu = false;
  return m;
}

ModelSpec ModelSpec::llama2_70b() {
  ModelSpec m;
  m.name = "LLaMA-2-70B";
  m.layers = 80;
  m.hidden = 8192;
  m.heads = 64;
  m.kv_heads = 8;
  m.ffn_hidden = 28672;
  m.vocab = 32000;
  return m;
}

ModelSpec ModelSpec::llama3_70b() {
  ModelSpec m;
  m.name = "LLaMA-3-70B";
  m.layers = 80;
  m.hidden = 8192;
  m.heads = 64;
  m.kv_heads = 8;
  m.ffn_hidden = 28672;
  m.vocab = 128256;
  return m;
}

ModelSpec ModelSpec::llama3_405b() {
  ModelSpec m;
  m.name = "LLaMA-3-405B";
  m.layers = 126;
  m.hidden = 16384;
  m.heads = 128;
  m.kv_heads = 8;
  m.ffn_hidden = 53248;
  m.vocab = 128256;
  return m;
}

ModelSpec ModelSpec::hunyuan_moe() {
  ModelSpec m;
  m.name = "Hunyuan-MoE";
  m.layers = 64;
  m.hidden = 6400;
  m.heads = 80;
  m.kv_heads = 8;
  m.ffn_hidden = 18304;
  m.vocab = 128000;
  m.experts = 16;
  m.top_k = 2;
  return m;
}

ModelSpec ModelSpec::deepseek_moe() {
  ModelSpec m;
  m.name = "DeepSeek-MoE";
  m.layers = 61;
  m.hidden = 7168;
  m.heads = 128;
  m.kv_heads = 16;      // MLA approximated as narrow-KV GQA
  m.ffn_hidden = 2048;  // fine-grained experts
  m.vocab = 129280;
  m.experts = 256;
  m.top_k = 8;
  return m;
}

ModelSpec ModelSpec::tiny() {
  ModelSpec m;
  m.name = "tiny";
  m.layers = 4;
  m.hidden = 512;
  m.heads = 8;
  m.kv_heads = 8;
  m.ffn_hidden = 2048;
  m.vocab = 32000;
  return m;
}

}  // namespace astral::seer
