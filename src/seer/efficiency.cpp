#include "seer/efficiency.h"

#include <algorithm>
#include <cmath>

namespace astral::seer {

namespace {
double saturating(double x, double ceiling, double half) {
  if (x <= 0) return 0.01;
  return ceiling * x / (x + half);
}
// A smooth, deterministic ripple over log-size; represents residual
// packet-level structure (message segmentation, window effects) that a
// polynomial fit tracks only approximately.
double ripple(double x, double amplitude) {
  if (x <= 0) return 1.0;
  return 1.0 + amplitude * std::sin(1.7 * std::log2(x));
}
}  // namespace

double TestbedEfficiency::compute_eff(double flops) const {
  return std::clamp(saturating(flops, p_.compute_ceiling, p_.compute_half_flops) *
                        ripple(flops, p_.ripple),
                    0.01, 1.0);
}

double TestbedEfficiency::memory_eff(double bytes) const {
  return std::clamp(saturating(bytes, p_.memory_ceiling, p_.memory_half_bytes) *
                        ripple(bytes, p_.ripple),
                    0.01, 1.0);
}

double TestbedEfficiency::network_eff(double bytes) const {
  double base = saturating(bytes, p_.network_ceiling, p_.network_half_bytes) *
                ripple(bytes, p_.ripple);
  return std::clamp(base * (1.0 - p_.congestion), 0.01, 1.0);
}

CalibratedEfficiency::CalibratedEfficiency(core::Polynomial compute, core::Polynomial memory,
                                           core::Polynomial network)
    : compute_(std::move(compute)), memory_(std::move(memory)), network_(std::move(network)) {}

double CalibratedEfficiency::eval_clamped(const core::Polynomial& p, double x) {
  if (p.coeffs.empty()) return 1.0;  // no calibration data -> basic model
  if (x <= 0) return 0.01;
  return std::clamp(p.eval(normalized_log_size(x)), 0.01, 1.0);
}

double CalibratedEfficiency::compute_eff(double flops) const {
  return eval_clamped(compute_, flops);
}
double CalibratedEfficiency::memory_eff(double bytes) const {
  return eval_clamped(memory_, bytes);
}
double CalibratedEfficiency::network_eff(double bytes) const {
  return eval_clamped(network_, bytes);
}

void Calibrator::add_compute_sample(double flops, double eff) {
  if (flops <= 0) return;
  comp_x_.push_back(normalized_log_size(flops));
  comp_y_.push_back(eff);
}
void Calibrator::add_memory_sample(double bytes, double eff) {
  if (bytes <= 0) return;
  mem_x_.push_back(normalized_log_size(bytes));
  mem_y_.push_back(eff);
}
void Calibrator::add_network_sample(double bytes, double eff) {
  if (bytes <= 0) return;
  net_x_.push_back(normalized_log_size(bytes));
  net_y_.push_back(eff);
}

CalibratedEfficiency Calibrator::fit(int degree) const {
  auto fit_one = [&](const std::vector<double>& xs, const std::vector<double>& ys) {
    if (xs.size() < static_cast<std::size_t>(degree + 1)) return core::Polynomial{};
    return core::polyfit(xs, ys, degree);
  };
  return CalibratedEfficiency(fit_one(comp_x_, comp_y_), fit_one(mem_x_, mem_y_),
                              fit_one(net_x_, net_y_));
}

Calibrator Calibrator::probe(const EfficiencyModel& truth, double min_size, double max_size,
                             int points) {
  Calibrator c;
  double lmin = std::log2(min_size);
  double lmax = std::log2(max_size);
  for (int i = 0; i < points; ++i) {
    double l = lmin + (lmax - lmin) * i / std::max(1, points - 1);
    double size = std::exp2(l);
    c.add_compute_sample(size, truth.compute_eff(size));
    c.add_memory_sample(size, truth.memory_eff(size));
    c.add_network_sample(size, truth.network_eff(size));
  }
  return c;
}

}  // namespace astral::seer
