// Modular hardware/software suites for Seer configuration (§4.3): GPU
// specs generate FLOPS / HBM numbers; the communication environment
// captures NIC and NVLink bandwidth, the NVLink (HB) domain size, and
// optional cross-datacenter constraints.
#pragma once

#include <string>

#include "core/units.h"

namespace astral::seer {

/// GPU device parameters. `flops` is dense BF16 throughput.
struct GpuSpec {
  std::string name;
  double flops = 0.0;        ///< FLOP/s (dense, half precision).
  double hbm_bw = 0.0;       ///< HBM bytes/sec.
  core::Bytes hbm_size = 0;  ///< HBM capacity.
  double tdp_watts = 0.0;

  static GpuSpec h100();
  static GpuSpec a100();
  /// An export-compliant low-tier part (the paper's setting (ii)):
  /// H100-class memory bandwidth but heavily reduced compute.
  static GpuSpec low_tier();
};

/// Communication environment of one job.
struct CommEnv {
  core::Bps nic_bw = core::gbps(400.0);       ///< Per-GPU RDMA bandwidth.
  core::Bps nvlink_bw = core::gBps(450.0);    ///< Per-GPU intra-host bw.
  int hb_domain = 8;  ///< GPUs per NVLink (high-bandwidth) domain.

  // Cross-datacenter extension (§4.4 case 1, Appendix B): traffic of the
  // flagged parallelism dimension crosses DCs over an oversubscribed
  // long-haul trunk with added propagation delay.
  double crossdc_oversub = 1.0;
  core::Seconds crossdc_rtt = 0.0;
};

}  // namespace astral::seer
