#include "seer/profiler_trace.h"

#include <algorithm>
#include <map>
#include <vector>

namespace astral::seer {

std::optional<OpGraph> import_profiler_trace(const core::Json& trace,
                                             bool keep_measured_times,
                                             std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<OpGraph> {
    if (error) *error = msg;
    return std::nullopt;
  };
  const core::Json& events = trace["traceEvents"];
  if (!events.is_array()) return fail("missing 'traceEvents' array");

  struct Ev {
    std::size_t order = 0;  // original index, stable tiebreak
    double ts = 0.0;        // us
    double dur = 0.0;       // us
    std::int64_t tid = 0;
    Operator op;
  };
  // Strict pass: a malformed entry fails the whole import with an indexed
  // diagnostic rather than silently shrinking the graph — a partial graph
  // replays to a shorter makespan, which reads as a (bogus) speedup.
  std::vector<Ev> evs;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const core::Json& j = events.at(i);
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!j.is_object()) return fail(at + ": not an object");
    if (!j["ph"].is_string()) return fail(at + ": missing 'ph' string");
    if (j["ph"].as_string() != "X") continue;  // only complete events
    if (!j["ts"].is_number()) return fail(at + ": 'X' event without numeric 'ts'");
    if (!j["dur"].is_number()) return fail(at + ": 'X' event without numeric 'dur'");
    Ev ev;
    ev.order = i;
    ev.ts = j["ts"].as_number();
    ev.dur = j["dur"].as_number();
    if (ev.dur < 0.0) return fail(at + ": negative 'dur'");
    ev.tid = j["tid"].as_int();
    const core::Json& args = j["args"];
    if (!args.is_null() && !args.is_object()) {
      return fail(at + ": 'args' present but not an object");
    }
    Operator& op = ev.op;
    op.name = j.string_or("name", "op" + std::to_string(i));
    op.flops = args.number_or("flops", 0.0);
    op.mem_bytes = args.number_or("mem_bytes", 0.0);
    op.comm_bytes = args.number_or("comm_bytes", 0.0);
    op.comm_group = static_cast<int>(args.number_or("comm_group", 1.0));
    op.cross_dc = args["cross_dc"].as_bool();
    auto kind = comm_kind_from(args.string_or("comm", "none"));
    if (!kind) {
      return fail(at + ": unknown collective kind '" +
                  args.string_or("comm", "") + "'");
    }
    if (*kind != CommKind::None) {
      op.type = OpType::Comm;
      op.comm = *kind;
    } else if (op.flops > 0.0) {
      op.type = OpType::Compute;
    } else {
      op.type = OpType::Memory;
    }
    if (keep_measured_times) op.fixed_time = ev.dur * 1e-6;
    evs.push_back(std::move(ev));
  }
  if (evs.empty()) return fail("trace contains no complete ('X') events");

  // Chakra-style dependency recovery: sort by launch timestamp; chain
  // each stream's program order; across streams, depend on the latest
  // event that *finished* before this one started (a happens-before
  // witness — real converters use correlation ids, which timestamps
  // subsume for well-formed traces).
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.order < b.order;
  });
  OpGraph g;
  std::map<std::int64_t, int> last_on_stream;  // tid -> op id
  struct Done {
    double end_ts;
    int id;
  };
  std::vector<Done> finished;  // all previously seen events
  for (std::size_t i = 0; i < evs.size(); ++i) {
    Ev& ev = evs[i];
    ev.op.id = static_cast<int>(i);
    if (auto it = last_on_stream.find(ev.tid); it != last_on_stream.end()) {
      ev.op.deps.push_back(it->second);
    }
    // Cross-stream witness: the latest event ending strictly before our
    // start, if it lives on another stream and is not already implied.
    const Done* witness = nullptr;
    for (const Done& d : finished) {
      if (d.end_ts <= ev.ts + 1e-9 && (witness == nullptr || d.end_ts > witness->end_ts)) {
        witness = &d;
      }
    }
    if (witness != nullptr) {
      bool already = false;
      for (int d : ev.op.deps) already |= d == witness->id;
      if (!already) ev.op.deps.push_back(witness->id);
    }
    last_on_stream[ev.tid] = ev.op.id;
    finished.push_back({ev.ts + ev.dur, ev.op.id});
    g.ops.push_back(ev.op);
  }
  std::string verr;
  if (!g.validate(&verr)) return fail("reconstructed graph invalid: " + verr);
  return g;
}

core::Json export_profiler_trace(const Timeline& timeline, const OpGraph& graph) {
  core::Json arr = core::Json::array();
  for (const auto& ev : timeline.events) {
    core::Json j = core::Json::object();
    j["name"] = core::Json(ev.name);
    j["ph"] = core::Json("X");
    j["ts"] = core::Json(ev.start * 1e6);
    j["dur"] = core::Json(ev.duration() * 1e6);
    j["pid"] = core::Json(0);
    j["tid"] = core::Json(ev.type == OpType::Comm ? 1 : 0);
    core::Json args = core::Json::object();
    int idx = graph.index_of(ev.op_id);
    if (idx >= 0) {
      const Operator& op = graph.ops[static_cast<std::size_t>(idx)];
      if (op.flops > 0) args["flops"] = core::Json(op.flops);
      if (op.mem_bytes > 0) args["mem_bytes"] = core::Json(op.mem_bytes);
      if (op.type == OpType::Comm) {
        args["comm"] = core::Json(to_string(op.comm));
        args["comm_bytes"] = core::Json(op.comm_bytes);
        args["comm_group"] = core::Json(op.comm_group);
        if (op.cross_dc) args["cross_dc"] = core::Json(true);
      }
    }
    j["args"] = std::move(args);
    arr.push_back(std::move(j));
  }
  core::Json doc = core::Json::object();
  doc["traceEvents"] = std::move(arr);
  return doc;
}

}  // namespace astral::seer
