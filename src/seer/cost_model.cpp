#include "seer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace astral::seer {

using core::Seconds;

CostModel::CostModel(GpuSpec gpu, CommEnv env, std::shared_ptr<const EfficiencyModel> eff)
    : gpu_(std::move(gpu)), env_(env), eff_(std::move(eff)) {}

Seconds CostModel::matmul_time_eq1(double m, double n, double p) const {
  return (2.0 * n - 1.0) * m * p / gpu_.flops;
}

Seconds CostModel::addition_time_eq2(double m, double n) const {
  return m * n / gpu_.flops;
}

Seconds CostModel::mem_time_eq3(double m, double n, int f_bits) const {
  return m * n * (f_bits / 8.0) / gpu_.hbm_bw;
}

Seconds CostModel::tp_comm_time_eq4(double b, double s, double h, int f_bits) const {
  return b * s * h * (f_bits / 8.0) * 8.0 / env_.nic_bw;
}

Seconds CostModel::pp_comm_time_eq5(double b, double s, double h, int f_bits,
                                    int tp_groups) const {
  return b * s * h * (f_bits / 8.0) / tp_groups * 8.0 / env_.nic_bw;
}

Seconds CostModel::dp_comm_time_eq6(double model_param_num, int f_bits, int tp_groups,
                                    int pp_groups) const {
  return model_param_num * (f_bits / 8.0) / (tp_groups * pp_groups) * 8.0 / env_.nic_bw;
}

Seconds CostModel::compute_time(double flops) const {
  if (flops <= 0) return 0.0;
  return flops / (gpu_.flops * eff_->compute_eff(flops));
}

Seconds CostModel::memory_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  return bytes / (gpu_.hbm_bw * eff_->memory_eff(bytes));
}

double CostModel::nic_rate(double step_bytes, bool cross_dc) const {
  double bw = env_.nic_bw * eff_->network_eff(std::max(step_bytes, 1.0));
  if (cross_dc) bw /= std::max(1.0, env_.crossdc_oversub);
  return bw;
}

double CostModel::nvlink_rate() const {
  // NVLink is a short copper mesh; a flat 90% of peak matches observed
  // NVSwitch efficiency without needing a size-dependent fit.
  return env_.nvlink_bw * 0.9;
}

Seconds CostModel::comm_time(CommKind kind, double bytes, int group, bool cross_dc) const {
  // Cross-DC point-to-point (PP) traffic streams over a persistent,
  // credit-buffered connection: latency is pipelined away and most of the
  // extra wide-area serialization hides behind the async isend/irecv —
  // only a fraction stays exposed. Collectives, by contrast, synchronize
  // on the long-haul link and pay both the thinner bandwidth and RTTs.
  auto sendrecv_time = [&](double sz) {
    Seconds local = sz * 8.0 / nic_rate(sz, /*cross_dc=*/false);
    if (!cross_dc) return local;
    Seconds wide = sz * 8.0 / nic_rate(sz, /*cross_dc=*/true);
    constexpr double kExposedFraction = 0.10;
    return local + kExposedFraction * (wide - local);
  };
  if (bytes <= 0 || group <= 1) {
    if (kind == CommKind::SendRecv && bytes > 0) return sendrecv_time(bytes);
    return 0.0;
  }

  const double n = group;
  const double intra = std::min<double>(group, env_.hb_domain);
  const double domains = std::ceil(n / intra);
  const double nvl = nvlink_rate();

  auto ring_time = [&](double size, double members, double rate, double steps_factor) {
    // steps_factor: 2(N-1)/N for allreduce, (N-1)/N for RS/AG.
    if (members <= 1) return 0.0;
    return steps_factor * (members - 1.0) / members * size * 8.0 / rate;
  };

  Seconds t = 0.0;
  switch (kind) {
    case CommKind::AllReduce:
    case CommKind::ReduceScatter:
    case CommKind::AllGather: {
      const double steps_factor = kind == CommKind::AllReduce ? 2.0 : 1.0;
      if (domains <= 1.0) {
        t = ring_time(bytes, intra, nvl, steps_factor);
      } else {
        // Hierarchical: intra-domain reduce-scatter, inter-domain ring on
        // the NIC over 1/intra of the data, intra-domain all-gather. The
        // inter ring is chunk-pipelined, so throughput follows the full
        // inter payload, not the per-rank slice.
        double inter_bytes = bytes / intra;
        if (kind != CommKind::AllGather) t += ring_time(bytes, intra, nvl, 1.0);
        t += ring_time(inter_bytes, domains, nic_rate(inter_bytes, cross_dc), steps_factor);
        if (kind != CommKind::ReduceScatter) t += ring_time(bytes, intra, nvl, 1.0);
        if (cross_dc) t += env_.crossdc_rtt * 2.0;
      }
      break;
    }
    case CommKind::AllToAll: {
      // Per-rank payload `bytes` split across the other n-1 peers:
      // intra-domain slices ride NVLink, the rest the NIC; both overlap.
      double per_peer = bytes / (n - 1.0);
      double intra_bytes = per_peer * (intra - 1.0);
      double inter_bytes = per_peer * (n - intra);
      Seconds t_intra = intra_bytes > 0 ? intra_bytes * 8.0 / nvl : 0.0;
      Seconds t_inter =
          inter_bytes > 0 ? inter_bytes * 8.0 / nic_rate(per_peer, cross_dc) : 0.0;
      t = std::max(t_intra, t_inter);
      if (cross_dc && inter_bytes > 0) t += env_.crossdc_rtt;
      break;
    }
    case CommKind::SendRecv: {
      t = sendrecv_time(bytes);
      break;
    }
    case CommKind::None:
      break;
  }
  return t;
}

Seconds CostModel::op_time(const Operator& op) const {
  if (op.fixed_time >= 0.0) return op.fixed_time;
  switch (op.type) {
    case OpType::Compute:
    case OpType::Memory:
      // Roofline: fused load+compute ops are gated by the slower side.
      return std::max(compute_time(op.flops), memory_time(op.mem_bytes));
    case OpType::Comm:
      return comm_time(op.comm, op.comm_bytes, op.comm_group, op.cross_dc);
  }
  return 0.0;
}

}  // namespace astral::seer
