// Self-correcting throughput models (§4.3 "self-correction of modeling").
//
// Basic modeling divides work by *theoretical* bandwidth (efficiency = 1).
// Reality delivers less: kernels ramp up, HBM has access overheads, and
// network throughput is a packet-level phenomenon shaped by congestion
// control and datapath contention. Seer corrects for this by fitting a
// polynomial curve to throughput *measured* on the production fabric and
// using measured-throughput-at-this-size instead of the theoretical peak.
//
// Three implementations:
//  * TheoreticalEfficiency — the uncorrected basic model (eff = 1).
//  * TestbedEfficiency — the "ground truth" our simulated testbed runs
//    with: saturating size-dependent curves plus a deterministic ripple
//    (standing in for packet-level effects we cannot model in closed
//    form). The substitution for real production measurements.
//  * CalibratedEfficiency — polynomial fits (in log2 size) to samples
//    collected from a testbed, which is what production Seer uses.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "core/math.h"

namespace astral::seer {

/// Fraction of theoretical peak achieved, as a function of work size.
class EfficiencyModel {
 public:
  virtual ~EfficiencyModel() = default;
  /// Compute kernels: `flops` = FLOPs of the kernel.
  virtual double compute_eff(double flops) const = 0;
  /// HBM: `bytes` accessed by the kernel.
  virtual double memory_eff(double bytes) const = 0;
  /// Network: `bytes` of the per-step message.
  virtual double network_eff(double bytes) const = 0;
};

/// The uncorrected basic model: full theoretical throughput everywhere.
class TheoreticalEfficiency final : public EfficiencyModel {
 public:
  double compute_eff(double) const override { return 1.0; }
  double memory_eff(double) const override { return 1.0; }
  double network_eff(double) const override { return 1.0; }
};

/// Ground-truth efficiency of the simulated testbed: saturating curves
/// with configurable ceilings and half-saturation points, plus a small
/// deterministic ripple standing in for packet-level behaviour. Also
/// models on-path congestion via `congestion` (0..1 rate loss).
class TestbedEfficiency final : public EfficiencyModel {
 public:
  struct Params {
    double compute_ceiling = 0.90;
    double compute_half_flops = 2e9;
    double memory_ceiling = 0.88;
    double memory_half_bytes = 1.6e7;
    double network_ceiling = 0.94;
    double network_half_bytes = 4e6;
    double ripple = 0.004;     ///< Relative amplitude of the ripple term.
    double congestion = 0.0;   ///< Extra fractional loss on network.
  };

  TestbedEfficiency() = default;
  explicit TestbedEfficiency(Params p) : p_(p) {}

  double compute_eff(double flops) const override;
  double memory_eff(double bytes) const override;
  double network_eff(double bytes) const override;

 private:
  Params p_;
};

/// Polynomial fits over log2(size): what Seer runs in production after
/// calibration. Efficiencies are clamped to [0.01, 1].
class CalibratedEfficiency final : public EfficiencyModel {
 public:
  CalibratedEfficiency(core::Polynomial compute, core::Polynomial memory,
                       core::Polynomial network);

  double compute_eff(double flops) const override;
  double memory_eff(double bytes) const override;
  double network_eff(double bytes) const override;

 private:
  static double eval_clamped(const core::Polynomial& p, double x);
  core::Polynomial compute_, memory_, network_;
};

/// Normalization of the fit domain: u = (log2(size) - kLogCenter) /
/// kLogScale maps realistic sizes (~1e5..1e14) into roughly [-1, 1].
inline constexpr double kLogCenter = 30.0;
inline constexpr double kLogScale = 18.0;
inline double normalized_log_size(double size) {
  return (std::log2(size) - kLogCenter) / kLogScale;
}

/// Collects (size, efficiency) measurements and fits the calibration
/// polynomials. Efficiency samples are throughput_measured / peak.
class Calibrator {
 public:
  void add_compute_sample(double flops, double eff);
  void add_memory_sample(double bytes, double eff);
  void add_network_sample(double bytes, double eff);

  std::size_t sample_count() const {
    return comp_x_.size() + mem_x_.size() + net_x_.size();
  }

  /// Fits degree-`degree` polynomials in the normalized log2(size)
  /// domain (see kLogCenter/kLogScale — normalization keeps the normal
  /// equations well-conditioned at higher degrees). Dimensions without
  /// samples fall back to the theoretical constant 1.
  CalibratedEfficiency fit(int degree = 8) const;

  /// Convenience: probes a ground-truth model at log-spaced sizes, the
  /// way offline NCCL-test sweeps probe the production fabric. The
  /// default range covers realistic LLM kernel/message sizes up to the
  /// largest fused backward matmuls (~1e13 FLOPs).
  static Calibrator probe(const EfficiencyModel& truth,
                          double min_size = 1e5, double max_size = 1e14,
                          int points = 96);

 private:
  std::vector<double> comp_x_, comp_y_;
  std::vector<double> mem_x_, mem_y_;
  std::vector<double> net_x_, net_y_;
};

}  // namespace astral::seer
