#include "seer/configs.h"

namespace astral::seer {

using namespace core;

GpuSpec GpuSpec::h100() {
  GpuSpec g;
  g.name = "H100";
  g.flops = tflops(989.0);  // dense BF16
  g.hbm_bw = 3.35e12;
  g.hbm_size = 80_GiB;
  g.tdp_watts = 700.0;
  return g;
}

GpuSpec GpuSpec::a100() {
  GpuSpec g;
  g.name = "A100";
  g.flops = tflops(312.0);
  g.hbm_bw = 2.0e12;
  g.hbm_size = 80_GiB;
  g.tdp_watts = 400.0;
  return g;
}

GpuSpec GpuSpec::low_tier() {
  GpuSpec g;
  g.name = "low-tier";
  g.flops = tflops(148.0);  // compute-capped export part
  g.hbm_bw = 4.0e12;
  g.hbm_size = 96_GiB;
  g.tdp_watts = 400.0;
  return g;
}

}  // namespace astral::seer
