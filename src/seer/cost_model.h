// Operator execution-time model: the paper's Appendix E closed forms
// (Eqs. 1-6) for atomic computation / memory / communication operations,
// generalized with (a) the efficiency correction of §4.3 and (b) an
// NVLink-domain-aware hierarchical collective model used for the Fig. 14
// intra-host scaling study.
#pragma once

#include <memory>

#include "core/units.h"
#include "seer/configs.h"
#include "seer/efficiency.h"
#include "seer/op_graph.h"

namespace astral::seer {

class CostModel {
 public:
  CostModel(GpuSpec gpu, CommEnv env, std::shared_ptr<const EfficiencyModel> eff);

  const GpuSpec& gpu() const { return gpu_; }
  const CommEnv& env() const { return env_; }

  // ----- Appendix E, verbatim (theoretical bandwidths, no correction):

  /// Eq. 1: A(m x n) * B(n x p) -> (2n-1) m p / flops.
  core::Seconds matmul_time_eq1(double m, double n, double p) const;
  /// Eq. 2: A + B with A,B (m x n) -> m n / flops.
  core::Seconds addition_time_eq2(double m, double n) const;
  /// Eq. 3: touch of matrix (m x n) with f-bit elements over HBM.
  core::Seconds mem_time_eq3(double m, double n, int f_bits) const;
  /// Eq. 4: TP collective of activation (b, s, h), f-bit.
  core::Seconds tp_comm_time_eq4(double b, double s, double h, int f_bits) const;
  /// Eq. 5: PP point-to-point, activation sharded over tp_groups.
  core::Seconds pp_comm_time_eq5(double b, double s, double h, int f_bits,
                                 int tp_groups) const;
  /// Eq. 6: DP gradient synchronization of the model shard.
  core::Seconds dp_comm_time_eq6(double model_param_num, int f_bits, int tp_groups,
                                 int pp_groups) const;

  // ----- Corrected, engine-facing costs:

  /// Kernel compute time with measured-FLOPS correction.
  core::Seconds compute_time(double flops) const;
  /// HBM access time with measured-bandwidth correction.
  core::Seconds memory_time(double bytes) const;
  /// Collective time: hierarchical (NVLink domain first, NIC between
  /// domains), with measured-network-throughput correction on the NIC
  /// stage and cross-datacenter oversubscription/RTT when flagged.
  core::Seconds comm_time(CommKind kind, double bytes, int group, bool cross_dc) const;

  /// Full operator cost. Fused Mem+Comp ops follow the roofline:
  /// max(compute_time, memory_time). `fixed_time` overrides everything.
  core::Seconds op_time(const Operator& op) const;

 private:
  double nic_rate(double step_bytes, bool cross_dc) const;
  double nvlink_rate() const;

  GpuSpec gpu_;
  CommEnv env_;
  std::shared_ptr<const EfficiencyModel> eff_;
};

}  // namespace astral::seer
