// LLM architecture descriptions used by Seer templates and the workload
// trainer. Dimensions follow the published configurations; the
// Hunyuan-like MoE spec is an approximation of the paper's in-production
// model (exact dims are proprietary — see DESIGN.md substitutions).
#pragma once

#include <string>

namespace astral::seer {

struct ModelSpec {
  std::string name;
  int layers = 0;
  int hidden = 0;      ///< Model (embedding) dimension.
  int heads = 0;       ///< Attention heads.
  int kv_heads = 0;    ///< KV heads (GQA); == heads for MHA.
  int ffn_hidden = 0;  ///< FFN intermediate size (per expert for MoE).
  int vocab = 0;
  bool swiglu = true;  ///< SwiGLU MLP (3 matrices) vs GELU (2).

  // MoE extensions; experts == 0 means dense.
  int experts = 0;
  int top_k = 0;

  int param_bytes = 2;  ///< FP16/BF16 weights.

  bool is_moe() const { return experts > 0; }

  /// Total parameter count (embedding + layers + head).
  double params() const;
  /// Parameters of one transformer layer (all experts included for MoE).
  double layer_params() const;
  /// Parameters active per token (top-k experts only for MoE).
  double active_params() const;

  /// FLOPs for one token of forward pass (approximate 2*active_params
  /// plus attention quadratic term at sequence length s).
  double fwd_flops_per_token(int seq_len) const;

  static ModelSpec gpt3_175b();
  static ModelSpec llama2_70b();
  static ModelSpec llama3_70b();
  static ModelSpec llama3_405b();
  /// Hunyuan-like trillion-parameter MoE (approximation).
  static ModelSpec hunyuan_moe();
  /// DeepSeek-R1-like fine-grained MoE (many small experts, high top-k) —
  /// the architecture §4.3 calls out as hardest for Seer.
  static ModelSpec deepseek_moe();
  /// A small dense model for fast tests.
  static ModelSpec tiny();
};

}  // namespace astral::seer
