#include "seer/templates.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace astral::seer {
namespace {

/// Incremental graph construction with chained dependencies.
class Builder {
 public:
  explicit Builder(OpGraph& g) : g_(g) {}

  /// Adds an op depending on `deps`; empty deps means "after the previous
  /// exec-chain op" handled by the caller.
  int add(Operator op, std::vector<int> deps) {
    op.id = next_id_++;
    op.deps = std::move(deps);
    g_.ops.push_back(std::move(op));
    return g_.ops.back().id;
  }

  int exec(std::string name, double flops, double mem_bytes, std::vector<int> deps) {
    Operator op;
    op.name = std::move(name);
    op.type = flops > 0 ? OpType::Compute : OpType::Memory;
    op.flops = flops;
    op.mem_bytes = mem_bytes;
    return add(std::move(op), std::move(deps));
  }

  int comm(std::string name, CommKind kind, double bytes, int group, bool cross_dc,
           std::vector<int> deps) {
    Operator op;
    op.name = std::move(name);
    op.type = OpType::Comm;
    op.comm = kind;
    op.comm_bytes = bytes;
    op.comm_group = group;
    op.cross_dc = cross_dc;
    return add(std::move(op), std::move(deps));
  }

 private:
  OpGraph& g_;
  int next_id_ = 0;
};

std::vector<int> after(int id) { return id >= 0 ? std::vector<int>{id} : std::vector<int>{}; }

}  // namespace

OpGraph build_graph(const ModelSpec& model, const parallel::ParallelismConfig& cfg,
                    const WorkloadShape& shape) {
  assert(cfg.valid());
  OpGraph g;
  Builder b(g);

  const double batch = shape.micro_batch;
  const double s = shape.phase == Phase::Decode ? 1.0 : shape.seq_len;
  const double s_attn = shape.phase == Phase::Decode ? shape.ctx_len : shape.seq_len;
  const double h = model.hidden;
  const double kv_ratio = model.heads > 0 ? static_cast<double>(model.kv_heads) / model.heads : 1.0;
  const double ffn = model.ffn_hidden;
  const double t = cfg.tp;
  const double wbytes = model.param_bytes;
  const double act_bytes = batch * s * h * wbytes;  // one activation tensor
  const bool train = shape.phase == Phase::Train;
  const bool moe = model.is_moe();
  const int layers = std::max(1, model.layers / cfg.pp);

  const bool pp_cross_dc = shape.cross_dc == CrossDcDim::PP;
  const bool dp_cross_dc = shape.cross_dc == CrossDcDim::DP;

  // Per-layer weight element counts (per TP shard).
  const double qkv_w = h * h * (1.0 + 2.0 * kv_ratio) / t;
  const double proj_w = h * h / t;
  const double mlp_w = h * ffn / t;  // one of the 3 SwiGLU matrices
  const double experts_per_rank = moe ? std::max(1.0, static_cast<double>(model.experts) / cfg.ep) : 0.0;
  // MoE token routing: each token's activation visits top_k experts.
  const double moe_a2a_bytes = moe ? act_bytes * model.top_k : 0.0;
  // MoE FFN math is per activated expert path.
  const double moe_flops_scale = moe ? static_cast<double>(model.top_k) : 1.0;

  // ZeRO-3: per-layer weight shard that must be all-gathered before use.
  const double layer_param_shard =
      model.layer_params() / (t * cfg.pp) * wbytes;  // bytes on this device
  const bool zero3 = train && shape.dp_strategy == DpStrategy::Zero3 && cfg.dp > 1;

  int prev = -1;  // exec-chain tail

  // ---- Input section.
  if (shape.include_embedding) {
    int lw = b.exec("LoadWeight", 0.0, static_cast<double>(model.vocab) * h / t * wbytes,
                    after(prev));
    prev = b.exec("EmbeddingComputation", 2.0 * batch * s * h, act_bytes, after(lw));
  }

  // ---- Transformer layers.
  std::vector<int> layer_tails;  // last bwd-relevant op per layer (fwd tail)
  int pp_recv = -1;
  if (cfg.pp > 1) {
    pp_recv = b.comm("PPRecv", CommKind::SendRecv, act_bytes / t, 2, pp_cross_dc, {});
  }

  for (int layer = 0; layer < layers; ++layer) {
    auto n = [&](const char* base) { return std::string(base); };
    std::vector<int> head_deps = after(prev);
    if (layer == 0 && pp_recv >= 0) head_deps.push_back(pp_recv);

    if (zero3) {
      // Prefetchable weight gather for this layer (depends on nothing in
      // the exec chain, so it overlaps preceding compute).
      int ag = b.comm("ZeroWeightAllGather", CommKind::AllGather,
                      layer_param_shard * cfg.dp, cfg.dp, dp_cross_dc, {});
      head_deps.push_back(ag);
    }

    int norm_w = b.exec(n("RMSNormLoadWeight"), 0.0, h * wbytes, head_deps);
    int norm = b.exec(n("RMSNormComputation"), 4.0 * batch * s * h, act_bytes, after(norm_w));
    int qkv_lw = b.exec(n("GQAQKVLoadWeight"), 0.0, qkv_w * wbytes, after(norm));
    int qkv = b.exec(n("GQAQKVComputation"), 2.0 * batch * s * qkv_w, act_bytes, after(qkv_lw));
    // Decode reads the whole KV cache: memory-bound via the roofline.
    double kv_cache_bytes = batch * s_attn * 2.0 * h * kv_ratio / t * wbytes;
    int attn = b.exec(n("GQACoreAttn"), 4.0 * batch * s * s_attn * h / t, kv_cache_bytes,
                      after(qkv));
    int proj_lw = b.exec(n("GQAAttnProjLoadWeight"), 0.0, proj_w * wbytes, after(attn));
    int proj = b.exec(n("GQAAttnProjComputation"), 2.0 * batch * s * proj_w, act_bytes,
                      after(proj_lw));
    prev = proj;
    if (cfg.tp > 1) {
      int ar = b.comm(n("AttnTPAllReduce"), CommKind::AllReduce, act_bytes, cfg.tp, false,
                      after(proj));
      prev = ar;
    }

    if (!moe) {
      int up = b.exec(n("SwiMLPUpProj"), 2.0 * batch * s * mlp_w, mlp_w * wbytes, after(prev));
      int gate = b.exec(n("SwiMLPGateProj"), 2.0 * batch * s * mlp_w, mlp_w * wbytes, after(up));
      int down = b.exec(n("SwiMLPDownProj"), 2.0 * batch * s * mlp_w, mlp_w * wbytes,
                        after(gate));
      prev = down;
    } else {
      int router = b.exec(n("MoERouter"), 2.0 * batch * s * h * model.experts, act_bytes,
                          after(prev));
      int dispatch = b.comm(n("MoEDispatchAllToAll"), CommKind::AllToAll, moe_a2a_bytes / t,
                            cfg.ep, dp_cross_dc, after(router));
      int up = b.exec(n("ExpertUpProj"), 2.0 * batch * s * mlp_w * moe_flops_scale,
                      experts_per_rank * mlp_w * wbytes, after(dispatch));
      int gate = b.exec(n("ExpertGateProj"), 2.0 * batch * s * mlp_w * moe_flops_scale,
                        experts_per_rank * mlp_w * wbytes, after(up));
      int down = b.exec(n("ExpertDownProj"), 2.0 * batch * s * mlp_w * moe_flops_scale,
                        experts_per_rank * mlp_w * wbytes, after(gate));
      int combine = b.comm(n("MoECombineAllToAll"), CommKind::AllToAll, moe_a2a_bytes / t,
                           cfg.ep, dp_cross_dc, after(down));
      prev = combine;
    }
    if (cfg.tp > 1) {
      prev = b.comm(n("MLPTPAllReduce"), CommKind::AllReduce, act_bytes, cfg.tp, false,
                    after(prev));
    }
    layer_tails.push_back(prev);
  }

  if (cfg.pp > 1) {
    prev = b.comm("PPSend", CommKind::SendRecv, act_bytes / t, 2, pp_cross_dc, after(prev));
  }

  // ---- Output section.
  if (shape.include_logit) {
    prev = b.exec("Logit", 2.0 * batch * s * h * model.vocab / t,
                  h * model.vocab / t * wbytes, after(prev));
  }

  // ---- Backward pass (training): ~2x forward math per layer, reverse
  // order, with the same TP collectives and PP grad exchange.
  if (train) {
    if (cfg.pp > 1) {
      prev = b.comm("PPRecvGrad", CommKind::SendRecv, act_bytes / t, 2, pp_cross_dc,
                    after(prev));
    }
    std::vector<int> bwd_tails;
    for (int layer = layers - 1; layer >= 0; --layer) {
      double mlp_flops = moe ? 2.0 * batch * s * mlp_w * moe_flops_scale : 2.0 * batch * s * mlp_w;
      double mlp_mem = moe ? experts_per_rank * mlp_w * wbytes : mlp_w * wbytes;
      std::vector<int> head = after(prev);
      if (zero3) {
        int ag = b.comm("ZeroWeightAllGatherBwd", CommKind::AllGather,
                        layer_param_shard * cfg.dp, cfg.dp, dp_cross_dc, {});
        head.push_back(ag);
      }
      int d_mlp = b.exec("BwdMLP", 3.0 * 2.0 * mlp_flops, 3.0 * mlp_mem, head);
      prev = d_mlp;
      if (moe) {
        prev = b.comm("BwdMoEAllToAll", CommKind::AllToAll, 2.0 * moe_a2a_bytes / t, cfg.ep,
                      dp_cross_dc, after(prev));
      }
      if (cfg.tp > 1) {
        prev = b.comm("BwdMLPTPAllReduce", CommKind::AllReduce, act_bytes, cfg.tp, false,
                      after(prev));
      }
      int d_attn = b.exec("BwdAttn",
                          2.0 * (2.0 * batch * s * (qkv_w + proj_w) +
                                 4.0 * batch * s * s_attn * h / t),
                          (qkv_w + proj_w) * wbytes, after(prev));
      prev = d_attn;
      if (cfg.tp > 1) {
        prev = b.comm("BwdAttnTPAllReduce", CommKind::AllReduce, act_bytes, cfg.tp, false,
                      after(prev));
      }
      bwd_tails.push_back(prev);
    }
    if (cfg.pp > 1) {
      prev = b.comm("PPSendGrad", CommKind::SendRecv, act_bytes / t, 2, pp_cross_dc,
                    after(prev));
    }

    // ---- DP gradient synchronization, bucketed so it overlaps the
    // remaining backward compute (the engine's comm stream runs it as
    // soon as the bucket's producing layers finish).
    if (shape.include_dp_sync && cfg.dp > 1) {
      double shard_params = model.params() / (t * cfg.pp);
      double total_bytes = shard_params * wbytes;
      CommKind kind = zero3 ? CommKind::ReduceScatter : CommKind::AllReduce;
      int buckets = std::max(1, shape.dp_buckets);
      for (int k = 0; k < buckets; ++k) {
        // Bucket k becomes ready after a proportional prefix of backward.
        std::size_t idx = std::min(bwd_tails.size() - 1,
                                   static_cast<std::size_t>((k + 1) * bwd_tails.size() /
                                                            buckets) -
                                       (bwd_tails.empty() ? 0 : 1));
        std::vector<int> deps;
        if (!bwd_tails.empty()) deps.push_back(bwd_tails[idx]);
        b.comm("DPGrad" + std::string(zero3 ? "ReduceScatter" : "AllReduce") + "/b" +
                   std::to_string(k),
               kind, total_bytes / buckets, cfg.dp, dp_cross_dc, std::move(deps));
      }
    }
  }

  assert(g.validate());
  return g;
}

std::vector<OpInventoryRow> op_inventory(const OpGraph& graph) {
  auto type_label = [](const Operator& op) -> std::string {
    if (op.type == OpType::Comm) return "Comm.";
    if (op.flops > 0 && op.mem_bytes > 0) {
      // Weight-load fused with compute (the Table 1 "Mem. + Comp" rows)
      // only when the memory side is a weight matrix; dedicated
      // *Computation ops and activation touches are labelled Comp.
      bool fused_weight = (op.name.find("Proj") != std::string::npos ||
                           op.name == "Logit") &&
                          op.name.find("Computation") == std::string::npos;
      if (fused_weight) return "Mem. + Comp.";
      return "Comp.";
    }
    if (op.flops > 0) return "Comp.";
    return "Mem.";
  };
  auto section_of = [](const std::string& name) -> std::string {
    if (name == "LoadWeight" || name == "EmbeddingComputation") return "Input Embedding";
    if (name == "Logit") return "Output Layer";
    return "Transformer Layer";
  };
  std::vector<OpInventoryRow> rows;
  std::set<std::string> seen;
  for (const Operator& op : graph.ops) {
    // Strip bucket suffixes for inventory purposes.
    std::string base = op.name.substr(0, op.name.find('/'));
    if (!seen.insert(base).second) continue;
    rows.push_back({section_of(base), base, type_label(op)});
  }
  return rows;
}

}  // namespace astral::seer
