// Operator-dependency templates ("extending with handcraft", §4.3).
//
// build_graph() emits the workflow of one microbatch on one pipeline
// stage as the Table 1 operator inventory: Input (LoadWeight,
// EmbeddingComputation), per-layer Transformer ops (PPRecv, RMSNorm*,
// GQA*, AttnTPAllReduce, SwiMLP*, MLPTPAllReduce, PPSend) and the Output
// Logit. Training appends the backward pass and DP gradient
// synchronization buckets (overlappable with backward compute). MoE
// models replace the dense MLP with Router + Dispatch/Combine All-to-All
// + expert FFNs. ZeRO-3 DP adds per-layer weight AllGather prefetches
// and turns gradient sync into ReduceScatter.
#pragma once

#include "parallel/groups.h"
#include "seer/model_spec.h"
#include "seer/op_graph.h"

namespace astral::seer {

enum class Phase : std::uint8_t { Train, Prefill, Decode };
enum class DpStrategy : std::uint8_t { AllReduce, Zero3 };
/// Which parallelism dimension's traffic crosses datacenters (App. B).
enum class CrossDcDim : std::uint8_t { None, PP, DP };

struct WorkloadShape {
  Phase phase = Phase::Train;
  int micro_batch = 1;
  int seq_len = 4096;
  int ctx_len = 4096;  ///< KV length during decode.
  DpStrategy dp_strategy = DpStrategy::AllReduce;
  CrossDcDim cross_dc = CrossDcDim::None;
  int dp_buckets = 4;  ///< Gradient sync granularity (overlap knob).
  bool include_dp_sync = true;
  bool include_embedding = true;  ///< First-stage role.
  bool include_logit = true;      ///< Last-stage role.
};

/// Builds the per-device operator graph for one microbatch. The graph is
/// guaranteed to validate(). Layers are divided by cfg.pp (at least one
/// layer per stage).
OpGraph build_graph(const ModelSpec& model, const parallel::ParallelismConfig& cfg,
                    const WorkloadShape& shape);

/// The distinct operator inventory (name, type, comm kind) a graph uses —
/// what Table 1 lists for LLaMA-3.
struct OpInventoryRow {
  std::string section;  ///< "Input" / "Transformer Layer" / "Output Layer".
  std::string name;
  std::string type;  ///< "Comp." / "Mem." / "Mem. + Comp." / "Comm."
};
std::vector<OpInventoryRow> op_inventory(const OpGraph& graph);

}  // namespace astral::seer
