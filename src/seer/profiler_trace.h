// Profiler-trace conversion (§4.3, method (i)): "use PyTorch profiler to
// collect GPU traces and export the profiling data to JSON files. By
// leveraging PyTorch Chakra, model execution can be converted into an
// executor graph". This module implements that pipeline for the
// profiler's trace-event format:
//
//  * import_profiler_trace() consumes a Kineto-style JSON document
//    (traceEvents with ph:"X" kernel/comm events carrying dur + args)
//    and reconstructs an OpGraph: per-stream program order becomes the
//    dependency chain, cross-stream ordering is recovered from
//    correlated launch timestamps, and op attributes (flops, bytes,
//    collective kind) are read from the event args.
//  * export_profiler_trace() emits a timeline in the same format — so a
//    Seer forecast can be diffed against a real profile with the same
//    tooling, and so tests can round-trip.
#pragma once

#include <optional>
#include <string>

#include "core/json.h"
#include "seer/engine.h"
#include "seer/op_graph.h"

namespace astral::seer {

/// Parses a Kineto/PyTorch-profiler style trace into an operator graph.
/// Recognized event fields:
///   name, ts (us), dur (us), tid (stream id),
///   args.flops, args.mem_bytes, args.comm_bytes, args.comm (kind name),
///   args.comm_group, args.cross_dc
/// Events on the same tid are chained in ts order; an event additionally
/// depends on the latest earlier-finishing event of every other stream
/// (the happens-before edges Chakra derives from correlation ids).
/// When `keep_measured_times` is true, each op's fixed_time is set from
/// `dur` (replaying the profile); otherwise durations are left to the
/// cost model (re-forecasting the same workflow under new configs).
/// Malformed documents — non-object entries, events without a 'ph'
/// string, 'X' events without numeric ts/dur, negative dur, non-object
/// args, unknown args.comm kinds — fail the whole import (nullopt plus an
/// indexed diagnostic in *error) instead of importing a silent partial
/// graph.
std::optional<OpGraph> import_profiler_trace(const core::Json& trace,
                                             bool keep_measured_times = false,
                                             std::string* error = nullptr);

/// Renders a timeline as a profiler-style trace document (the inverse
/// direction; equivalent to Timeline::to_chrome_trace but with the op
/// attributes preserved in args so the trace can be re-imported).
core::Json export_profiler_trace(const Timeline& timeline, const OpGraph& graph);

}  // namespace astral::seer
