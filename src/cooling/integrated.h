// Air-liquid integrated cooling (§2.2 Optimization #2): cold plates pull
// heat from the high-power components (GPUs) into a liquid loop while air
// handles the rest; both share one primary cold source sized to 100% of
// capacity so the liquid:air ratio can follow the workload over the
// facility's ~10-year life.
#pragma once

#include <string>

#include "core/units.h"

namespace astral::cooling {

enum class WorkloadKind : std::uint8_t { GpuIntensive, CpuIntensive, Mixed };

const char* to_string(WorkloadKind k);

struct CoolingConfig {
  /// Fraction of IT heat captured by cold plates (0 = pure air cooling).
  double liquid_fraction = 0.0;
  /// Coefficient of performance: watts of heat moved per watt consumed.
  double air_cop = 3.2;
  double liquid_cop = 12.0;
  /// Primary cold source capacity in watts of heat. Sized to 100% of the
  /// facility's IT heat so either subsystem can take the full load.
  double primary_capacity_w = 0.0;

  /// Traditional all-air datacenter cooling (pre-Astral baseline).
  static CoolingConfig traditional_air(double capacity_w);
  /// Astral: bottom-up air + cold plates on high-power parts.
  static CoolingConfig astral_integrated(double capacity_w);
};

/// Recommended liquid fraction per workload type: GPU-heavy racks put
/// most heat in cold-plated parts, CPU-heavy racks do not.
double recommended_liquid_fraction(WorkloadKind kind);

class IntegratedCooling {
 public:
  explicit IntegratedCooling(CoolingConfig cfg) : cfg_(cfg) {}

  const CoolingConfig& config() const { return cfg_; }

  /// True when the shared primary source can absorb this heat load.
  bool can_handle(double it_heat_w) const {
    return cfg_.primary_capacity_w <= 0 || it_heat_w <= cfg_.primary_capacity_w;
  }

  /// Electrical power the cooling plant consumes to remove `it_heat_w`.
  double cooling_power(double it_heat_w) const;

  /// Re-targets the liquid:air split for a workload; the shared primary
  /// source means no re-plumbing, just valve settings.
  void adapt_to(WorkloadKind kind) { cfg_.liquid_fraction = recommended_liquid_fraction(kind); }

 private:
  CoolingConfig cfg_;
};

}  // namespace astral::cooling
