#include "cooling/airflow.h"

#include <algorithm>
#include <cmath>

namespace astral::cooling {

namespace {
constexpr double kAirDensity = 1.2;       // kg/m^3
constexpr double kAirHeatCapacity = 1005; // J/(kg K)
}  // namespace

const char* to_string(AirflowScheme s) {
  return s == AirflowScheme::SideIntake ? "side-intake" : "bottom-up";
}

double duct_velocity(const RackRowConfig& cfg, AirflowScheme scheme) {
  double area = scheme == AirflowScheme::SideIntake ? cfg.side_duct_area_m2
                                                    : cfg.bottom_plenum_area_m2;
  return cfg.total_airflow_m3s / area;
}

std::vector<double> airflow_distribution(const RackRowConfig& cfg, AirflowScheme scheme) {
  const int n = cfg.racks;
  std::vector<double> share(static_cast<std::size_t>(n), 1.0);
  if (scheme == AirflowScheme::SideIntake) {
    // Stream enters at both row ends and exits at the center hot-aisle
    // outlet. Local velocity rises toward the outlet as flows merge;
    // entrainment into a rack drops with the square of local velocity
    // (Bernoulli: static pressure deficit ~ v^2).
    const double v_duct = duct_velocity(cfg, scheme);
    for (int i = 0; i < n; ++i) {
      // Distance from the nearer end, normalized to [0, 1] at the outlet.
      double x = n > 1 ? static_cast<double>(std::min(i, n - 1 - i)) /
                             (static_cast<double>(n - 1) / 2.0)
                       : 0.0;
      double v_local = v_duct * (0.4 + 0.6 * x);  // accelerates inward
      double deficit = 1.6e-4 * v_local * v_local;  // entrainment loss
      share[static_cast<std::size_t>(i)] = std::max(0.7, 1.0 - deficit);
    }
  } else {
    // Bottom-up: the plenum's large cross-section keeps velocity low;
    // only a slight residual tilt from the supply end survives.
    const double v_duct = duct_velocity(cfg, scheme);
    for (int i = 0; i < n; ++i) {
      double x = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
      share[static_cast<std::size_t>(i)] = 1.0 - 1.5e-3 * v_duct * v_duct * x;
    }
  }
  double sum = 0.0;
  for (double s : share) sum += s;
  for (double& s : share) s /= sum;
  return share;
}

std::vector<double> rack_temperatures(const RackRowConfig& cfg, AirflowScheme scheme) {
  auto share = airflow_distribution(cfg, scheme);
  std::vector<double> temps(share.size());
  for (std::size_t i = 0; i < share.size(); ++i) {
    double flow = cfg.total_airflow_m3s * share[i];  // m^3/s through rack i
    double mass_flow = flow * kAirDensity;
    double rise = cfg.heat_watts_per_rack / (mass_flow * kAirHeatCapacity);
    temps[i] = cfg.ambient_c + rise;
  }
  return temps;
}

double temperature_spread(const RackRowConfig& cfg, AirflowScheme scheme) {
  auto temps = rack_temperatures(cfg, scheme);
  auto [lo, hi] = std::minmax_element(temps.begin(), temps.end());
  return *hi - *lo;
}

}  // namespace astral::cooling
