// Rack-row airflow model (§2.2 Optimization #1, Fig. 5).
//
// Reduced 1-D fluid model: a row of high-density racks shares a fixed
// total cool-airflow budget. With *side intake* the stream enters at the
// row ends and accelerates toward the hot-aisle outlet; by Bernoulli, the
// high-velocity region near the outlet has lower static pressure and
// entrains less cool air into the adjacent racks, starving them and
// spreading rack temperatures by ~1 degC. With *bottom-up* intake the
// plenum's much larger cross-section keeps velocity moderate and the
// per-rack flow uniform, collapsing the spread to ~0.1 degC. Velocity
// being inversely proportional to cross-sectional area at constant flow
// is exactly the principle the paper invokes.
#pragma once

#include <vector>

#include "core/units.h"

namespace astral::cooling {

enum class AirflowScheme : std::uint8_t {
  SideIntake,  ///< Traditional: intake from both ends of the row.
  BottomUp,    ///< Astral: vertical intake through a floor plenum.
};

const char* to_string(AirflowScheme s);

struct RackRowConfig {
  int racks = 8;
  double heat_watts_per_rack = 40e3;
  /// Total cool-air volume flow for the row, m^3/s.
  double total_airflow_m3s = 40.0;
  double ambient_c = 22.0;
  /// Duct cross-section seen by the moving stream, m^2. The bottom
  /// plenum is far larger than the side duct (the paper's lever).
  double side_duct_area_m2 = 1.2;
  double bottom_plenum_area_m2 = 12.0;
};

/// Per-rack share (fractions summing to 1) of the cool airflow.
std::vector<double> airflow_distribution(const RackRowConfig& cfg, AirflowScheme scheme);

/// Per-rack steady-state outlet temperature: ambient + Q / (rho cp V).
std::vector<double> rack_temperatures(const RackRowConfig& cfg, AirflowScheme scheme);

/// Max - min of the rack temperatures (the Fig. 5 metric: ~1 degC side
/// vs ~0.11 degC bottom-up).
double temperature_spread(const RackRowConfig& cfg, AirflowScheme scheme);

/// Mean stream velocity in the intake duct, m/s (v = V / A).
double duct_velocity(const RackRowConfig& cfg, AirflowScheme scheme);

}  // namespace astral::cooling
