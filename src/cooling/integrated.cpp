#include "cooling/integrated.h"

namespace astral::cooling {

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::GpuIntensive: return "gpu-intensive";
    case WorkloadKind::CpuIntensive: return "cpu-intensive";
    case WorkloadKind::Mixed: return "mixed";
  }
  return "?";
}

CoolingConfig CoolingConfig::traditional_air(double capacity_w) {
  CoolingConfig c;
  c.liquid_fraction = 0.0;
  c.air_cop = 2.8;  // side-intake airflow wastes fan power on recirculation
  c.primary_capacity_w = capacity_w;
  return c;
}

CoolingConfig CoolingConfig::astral_integrated(double capacity_w) {
  CoolingConfig c;
  c.liquid_fraction = recommended_liquid_fraction(WorkloadKind::GpuIntensive);
  c.air_cop = 3.6;  // bottom-up airflow: no starved racks, lower fan speed
  c.liquid_cop = 12.0;
  c.primary_capacity_w = capacity_w;
  return c;
}

double recommended_liquid_fraction(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::GpuIntensive: return 0.70;  // GPUs dominate rack heat
    case WorkloadKind::CpuIntensive: return 0.25;
    case WorkloadKind::Mixed: return 0.50;
  }
  return 0.5;
}

double IntegratedCooling::cooling_power(double it_heat_w) const {
  double liquid_heat = it_heat_w * cfg_.liquid_fraction;
  double air_heat = it_heat_w - liquid_heat;
  return liquid_heat / cfg_.liquid_cop + air_heat / cfg_.air_cop;
}

}  // namespace astral::cooling
