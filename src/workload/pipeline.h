// 1F1B pipeline schedule construction. The Trainer uses the closed form
// (mb + pp - 1) * (tf + tb) for iteration time; this module builds the
// actual interleaved schedule — warmup forwards, steady 1F1B pairs,
// cooldown backwards — so the closed form can be validated, unequal
// stage times analyzed, and Fig. 12-style multi-device strips rendered.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"

namespace astral::workload {

struct StageSlot {
  int stage = 0;
  int micro = 0;
  bool backward = false;
  core::Seconds start = 0.0;
  core::Seconds end = 0.0;
};

struct PipelineSchedule {
  std::vector<StageSlot> slots;  ///< In start order.
  core::Seconds makespan = 0.0;
  /// Idle fraction across all stages (the pipeline bubble).
  double bubble_fraction = 0.0;
  /// Busy time of each stage.
  std::vector<core::Seconds> stage_busy;
};

/// Builds the 1F1B schedule for `num_micro` microbatches over
/// fwd.size() == bwd.size() stages, where fwd[s]/bwd[s] are the per-
/// microbatch forward/backward times of stage s. Stage s runs
/// (pp - 1 - s) warmup forwards, then alternates one-forward-one-backward,
/// then drains its remaining backwards — the schedule that bounds
/// activation memory to `pp` in-flight microbatches.
PipelineSchedule schedule_1f1b(std::span<const core::Seconds> fwd,
                               std::span<const core::Seconds> bwd, int num_micro);

}  // namespace astral::workload
