#include "workload/pipeline.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace astral::workload {

using core::Seconds;

PipelineSchedule schedule_1f1b(std::span<const Seconds> fwd, std::span<const Seconds> bwd,
                               int num_micro) {
  PipelineSchedule out;
  const int pp = static_cast<int>(fwd.size());
  assert(fwd.size() == bwd.size());
  if (pp == 0 || num_micro <= 0) return out;

  struct Op {
    int micro;
    bool backward;
  };
  // Per-stage 1F1B program order.
  std::vector<std::vector<Op>> program(static_cast<std::size_t>(pp));
  for (int s = 0; s < pp; ++s) {
    auto& ops = program[static_cast<std::size_t>(s)];
    const int warmup = std::min(num_micro, pp - 1 - s);
    int next_f = 0;
    int next_b = 0;
    for (int i = 0; i < warmup; ++i) ops.push_back({next_f++, false});
    while (next_f < num_micro) {
      ops.push_back({next_f++, false});
      ops.push_back({next_b++, true});
    }
    while (next_b < num_micro) ops.push_back({next_b++, true});
  }

  // Dependency-driven sweep: an op is ready when its cross-stage
  // dependency finished (F(s,m) after F(s-1,m); B(s,m) after B(s+1,m))
  // and its stage reached it in program order.
  std::map<std::pair<int, bool>, std::vector<Seconds>> done;  // (stage,bwd) -> per-micro end
  done.clear();
  std::vector<Seconds> stage_free(static_cast<std::size_t>(pp), 0.0);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(pp), 0);
  std::vector<std::vector<Seconds>> f_end(static_cast<std::size_t>(pp),
                                          std::vector<Seconds>(static_cast<std::size_t>(num_micro), -1.0));
  std::vector<std::vector<Seconds>> b_end = f_end;

  std::size_t remaining = 0;
  for (const auto& ops : program) remaining += ops.size();
  out.stage_busy.assign(static_cast<std::size_t>(pp), 0.0);

  while (remaining > 0) {
    bool progressed = false;
    for (int s = 0; s < pp; ++s) {
      auto& cur = cursor[static_cast<std::size_t>(s)];
      if (cur >= program[static_cast<std::size_t>(s)].size()) continue;
      const Op op = program[static_cast<std::size_t>(s)][cur];
      Seconds dep = 0.0;
      if (!op.backward) {
        if (s > 0) {
          dep = f_end[static_cast<std::size_t>(s - 1)][static_cast<std::size_t>(op.micro)];
          if (dep < 0) continue;  // upstream forward not done yet
        }
      } else {
        if (s < pp - 1) {
          dep = b_end[static_cast<std::size_t>(s + 1)][static_cast<std::size_t>(op.micro)];
          if (dep < 0) continue;
        } else {
          dep = f_end[static_cast<std::size_t>(s)][static_cast<std::size_t>(op.micro)];
          if (dep < 0) continue;
        }
      }
      Seconds start = std::max(stage_free[static_cast<std::size_t>(s)], dep);
      Seconds dur = op.backward ? bwd[static_cast<std::size_t>(s)]
                                : fwd[static_cast<std::size_t>(s)];
      Seconds end = start + dur;
      stage_free[static_cast<std::size_t>(s)] = end;
      out.stage_busy[static_cast<std::size_t>(s)] += dur;
      (op.backward ? b_end : f_end)[static_cast<std::size_t>(s)]
          [static_cast<std::size_t>(op.micro)] = end;
      out.slots.push_back({s, op.micro, op.backward, start, end});
      ++cur;
      --remaining;
      progressed = true;
    }
    assert(progressed && "1F1B program order must be deadlock-free");
    if (!progressed) break;
  }

  std::sort(out.slots.begin(), out.slots.end(), [](const StageSlot& a, const StageSlot& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.stage < b.stage;
  });
  for (const auto& slot : out.slots) out.makespan = std::max(out.makespan, slot.end);
  double busy = 0.0;
  for (Seconds s : out.stage_busy) busy += s;
  out.bubble_fraction = out.makespan > 0 ? 1.0 - busy / (out.makespan * pp) : 0.0;
  return out;
}

}  // namespace astral::workload
