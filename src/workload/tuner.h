// Parallelism auto-tuning (§4.1: "tuning the parameters of the model
// framework, e.g., parallelism and overlap strategies ... for optimal
// performance before practical deployment"). The tuner enumerates
// (tp, pp, dp, micro-batch) plans for a GPU budget, rejects plans whose
// per-GPU memory footprint exceeds HBM, forecasts each survivor with
// Seer in milliseconds, and ranks by training throughput.
#pragma once

#include <optional>
#include <vector>

#include "workload/trainer.h"

namespace astral::workload {

/// Per-GPU memory footprint estimate (bytes) of a training plan:
/// parameters + gradients + optimizer state (Adam, fp32 moments) on the
/// TP/PP shard — divided across DP ranks under ZeRO — plus activation
/// memory for the in-flight microbatches of 1F1B.
double training_memory_bytes(const TrainingSetup& setup);

/// Per-GPU memory footprint of serving: weights shard + KV cache for
/// `batch` sequences of `ctx_len` tokens.
double inference_memory_bytes(const seer::ModelSpec& model,
                              const parallel::ParallelismConfig& cfg, int batch,
                              int ctx_len);

struct TuningCandidate {
  parallel::ParallelismConfig parallel;
  int micro_batch = 1;
  seer::DpStrategy dp_strategy = seer::DpStrategy::AllReduce;
  double memory_bytes = 0.0;
  bool fits = false;
  IterationForecast forecast;  ///< Valid only when fits.
};

struct TuningRequest {
  seer::ModelSpec model;
  int gpus = 1024;             ///< World size; plans must use all of them.
  int global_batch = 512;
  int seq_len = 4096;
  seer::GpuSpec gpu = seer::GpuSpec::h100();
  seer::CommEnv env;
  std::shared_ptr<const seer::EfficiencyModel> eff =
      std::make_shared<seer::TestbedEfficiency>();
  int max_tp = 8;              ///< TP beyond the NVLink domain is madness.
  bool try_zero3 = true;
  double memory_margin = 0.90; ///< Use at most this fraction of HBM.
};

struct TuningResult {
  std::vector<TuningCandidate> ranked;  ///< fits==true first, by throughput.
  int evaluated = 0;
  int rejected_memory = 0;

  /// Best feasible plan; nullopt when nothing fits.
  std::optional<TuningCandidate> best() const {
    if (ranked.empty() || !ranked.front().fits) return std::nullopt;
    return ranked.front();
  }
};

/// Enumerates and forecasts all valid plans.
TuningResult tune_parallelism(const TuningRequest& req);

}  // namespace astral::workload
