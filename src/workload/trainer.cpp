#include "workload/trainer.h"

#include <algorithm>

namespace astral::workload {

using core::Seconds;
using seer::CommKind;
using seer::OpType;
using seer::Phase;
using seer::WorkloadShape;

Trainer::Trainer(TrainingSetup setup)
    : setup_(std::move(setup)),
      engine_(seer::CostModel(setup_.gpu, setup_.env, setup_.eff)) {}

seer::OpGraph Trainer::micro_graph(bool with_dp_sync) const {
  WorkloadShape shape;
  shape.phase = Phase::Train;
  shape.micro_batch = setup_.micro_batch;
  shape.seq_len = setup_.seq_len;
  shape.dp_strategy = setup_.dp_strategy;
  shape.cross_dc = setup_.cross_dc;
  shape.include_dp_sync = with_dp_sync;
  // Representative stage: embedding on the first stage, logit on the
  // last; with pp == 1 both are present. For deep pipelines the stage
  // body dominates, so including both keeps one graph per job.
  shape.include_embedding = true;
  shape.include_logit = setup_.parallel.pp == 1;
  return seer::build_graph(setup_.model, setup_.parallel, shape);
}

IterationForecast Trainer::forecast_iteration() const {
  IterationForecast out;
  auto graph_plain = micro_graph(/*with_dp_sync=*/false);
  auto tl_plain = engine_.run(graph_plain);
  out.micro_time = tl_plain.makespan;
  out.micro_timeline = tl_plain;

  // Gradient sync: time and the part the bucket overlap cannot hide.
  if (setup_.parallel.dp > 1) {
    auto graph_dp = micro_graph(/*with_dp_sync=*/true);
    auto tl_dp = engine_.run(graph_dp);
    out.dp_exposed = std::max(0.0, tl_dp.makespan - tl_plain.makespan);
    const seer::CostModel& m = engine_.model();
    for (const auto& op : graph_dp.ops) {
      if (op.name.rfind("DPGrad", 0) == 0 || op.name.rfind("ZeroWeight", 0) == 0) {
        out.dp_sync_time += m.op_time(op);
      }
    }
  }

  const int mb = setup_.num_microbatches();
  const int pp = setup_.parallel.pp;
  // 1F1B: the pipeline drains after (mb + pp - 1) microbatch slots.
  // Gradient sync overlaps the final backward and, stage-dependently, the
  // pipeline drain bubble (stage s idles (pp-1-s) slots after its last
  // backward; the average stage gets half the drain); the remainder
  // extends the iteration.
  core::Seconds drain_window = 0.5 * (pp - 1) * out.micro_time;
  out.dp_exposed = std::max(0.0, out.dp_exposed - drain_window);
  out.iteration_time = (mb + pp - 1) * out.micro_time + out.dp_exposed;

  const double tokens = static_cast<double>(setup_.global_batch) * setup_.seq_len;
  out.tokens_per_sec = tokens / out.iteration_time;
  // 3x forward FLOPs for fwd+bwd.
  const double model_flops = 3.0 * setup_.model.fwd_flops_per_token(setup_.seq_len) * tokens;
  const double world = setup_.parallel.world();
  out.mfu = model_flops / (out.iteration_time * world * setup_.gpu.flops);
  out.comm_fraction =
      (tl_plain.exposed_comm * (mb + pp - 1) + out.dp_exposed) / out.iteration_time;
  return out;
}

InferenceForecast Trainer::forecast_prefill(int batch, int seq) const {
  WorkloadShape shape;
  shape.phase = Phase::Prefill;
  shape.micro_batch = batch;
  shape.seq_len = seq;
  shape.include_logit = true;
  auto graph = seer::build_graph(setup_.model, setup_.parallel, shape);
  InferenceForecast out;
  out.timeline = engine_.run(graph);
  // Stages execute sequentially for one request.
  out.latency = out.timeline.makespan * setup_.parallel.pp;
  out.tokens_per_sec = static_cast<double>(batch) * seq / out.latency;
  return out;
}

InferenceForecast Trainer::forecast_decode(int batch, int ctx_len) const {
  WorkloadShape shape;
  shape.phase = Phase::Decode;
  shape.micro_batch = batch;
  shape.seq_len = 1;
  shape.ctx_len = ctx_len;
  shape.include_logit = true;
  auto graph = seer::build_graph(setup_.model, setup_.parallel, shape);
  InferenceForecast out;
  out.timeline = engine_.run(graph);
  // Token latency crosses all stages; throughput pipelines across them.
  out.latency = out.timeline.makespan * setup_.parallel.pp;
  out.tokens_per_sec = static_cast<double>(batch) / out.timeline.makespan;
  return out;
}

TrafficSummary Trainer::traffic() const {
  TrafficSummary t;
  auto graph = micro_graph(/*with_dp_sync=*/true);
  const int mb = setup_.num_microbatches();
  for (const auto& op : graph.ops) {
    if (op.type != OpType::Comm) continue;
    bool per_iteration = op.name.rfind("DPGrad", 0) == 0;
    double bytes = op.comm_bytes * (per_iteration ? 1.0 : mb);
    if (op.name.find("TP") != std::string::npos) {
      t.tp_bytes += bytes;
    } else if (op.name.rfind("PP", 0) == 0) {
      t.pp_bytes += bytes;
    } else if (op.name.find("MoE") != std::string::npos) {
      t.ep_bytes += bytes;
    } else {
      t.dp_bytes += bytes;  // DPGrad* and ZeroWeight*
    }
  }
  return t;
}

double scaling_efficiency(const IterationForecast& base, int base_gpus, int base_batch,
                          const IterationForecast& scaled, int scaled_gpus,
                          int scaled_batch) {
  double base_per_gpu = base.tokens_per_sec / base_gpus;
  double scaled_per_gpu = scaled.tokens_per_sec / scaled_gpus;
  (void)base_batch;
  (void)scaled_batch;
  return base_per_gpu > 0 ? scaled_per_gpu / base_per_gpu : 0.0;
}

}  // namespace astral::workload
