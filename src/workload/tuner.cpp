#include "workload/tuner.h"

#include <algorithm>

namespace astral::workload {

double training_memory_bytes(const TrainingSetup& setup) {
  const auto& m = setup.model;
  const auto& p = setup.parallel;
  const double shard_params = m.params() / (static_cast<double>(p.tp) * p.pp);

  // Weights (fp16) + gradients (fp16) + Adam master weights and two
  // moments (fp32 each): 2 + 2 + 12 bytes per parameter. ZeRO-3 shards
  // all of it across DP; plain DP keeps full optimizer state per rank
  // (ZeRO-1-style optimizer sharding is the production default, so plain
  // DP here shards the 12 optimizer bytes but not weights/grads).
  double per_param_local = 0.0;
  if (setup.dp_strategy == seer::DpStrategy::Zero3) {
    per_param_local = 16.0 / std::max(1, p.dp);
  } else {
    per_param_local = 4.0 + 12.0 / std::max(1, p.dp);
  }
  double state = shard_params * per_param_local;

  // Activations: one microbatch's activations per resident stage; 1F1B
  // keeps up to `pp` microbatches in flight on the first stage. Standard
  // per-layer activation estimate ~ (34 + 5*s*heads/h) * b*s*h bytes / tp
  // (Korthikanti et al.) — we use the selective-recompute variant ~18.
  const double layers_per_stage = std::max(1.0, static_cast<double>(m.layers) / p.pp);
  const double b = setup.micro_batch;
  const double s = setup.seq_len;
  const double act_per_layer = 18.0 * b * s * m.hidden / p.tp;
  const int inflight = std::min(p.pp, std::max(1, setup.num_microbatches()));
  double activations = act_per_layer * layers_per_stage * inflight;

  return state + activations;
}

double inference_memory_bytes(const seer::ModelSpec& model,
                              const parallel::ParallelismConfig& cfg, int batch,
                              int ctx_len) {
  double weights = model.params() / (static_cast<double>(cfg.tp) * cfg.pp) *
                   model.param_bytes;
  double kv_ratio = model.heads > 0 ? static_cast<double>(model.kv_heads) / model.heads : 1.0;
  double layers_per_stage = std::max(1.0, static_cast<double>(model.layers) / cfg.pp);
  double kv = 2.0 * static_cast<double>(batch) * ctx_len * model.hidden * kv_ratio *
              layers_per_stage * model.param_bytes / cfg.tp;
  return weights + kv;
}

TuningResult tune_parallelism(const TuningRequest& req) {
  TuningResult result;
  const double hbm_budget = static_cast<double>(req.gpu.hbm_size) * req.memory_margin;

  for (int tp = 1; tp <= req.max_tp; tp *= 2) {
    for (int pp = 1; pp <= req.model.layers && tp * pp <= req.gpus; pp *= 2) {
      if (req.gpus % (tp * pp) != 0) continue;
      int dp = req.gpus / (tp * pp);
      if (req.global_batch % dp != 0) continue;
      int per_replica = req.global_batch / dp;
      for (int micro : {1, 2, 4}) {
        if (per_replica % micro != 0) continue;
        std::vector<seer::DpStrategy> strategies{seer::DpStrategy::AllReduce};
        if (req.try_zero3 && dp > 1) strategies.push_back(seer::DpStrategy::Zero3);
        for (auto strategy : strategies) {
          TrainingSetup setup;
          setup.model = req.model;
          setup.parallel = {.tp = tp, .dp = dp, .pp = pp,
                            .ep = req.model.is_moe() ? dp : 1};
          setup.global_batch = req.global_batch;
          setup.micro_batch = micro;
          setup.seq_len = req.seq_len;
          setup.gpu = req.gpu;
          setup.env = req.env;
          setup.eff = req.eff;
          setup.dp_strategy = strategy;

          TuningCandidate cand;
          cand.parallel = setup.parallel;
          cand.micro_batch = micro;
          cand.dp_strategy = strategy;
          cand.memory_bytes = training_memory_bytes(setup);
          cand.fits = cand.memory_bytes <= hbm_budget;
          ++result.evaluated;
          if (!cand.fits) {
            ++result.rejected_memory;
          } else {
            cand.forecast = Trainer(setup).forecast_iteration();
          }
          result.ranked.push_back(std::move(cand));
        }
      }
    }
  }

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const TuningCandidate& a, const TuningCandidate& b) {
              if (a.fits != b.fits) return a.fits;
              if (!a.fits) return a.memory_bytes < b.memory_bytes;
              return a.forecast.tokens_per_sec > b.forecast.tokens_per_sec;
            });
  return result;
}

}  // namespace astral::workload
