// End-to-end training/inference forecasting: combines the Seer operator
// templates, cost model and timeline engine with a pipeline schedule to
// produce per-iteration numbers (the quantities Figs. 12-14, 18, 19
// report).
#pragma once

#include <memory>

#include "seer/engine.h"
#include "seer/templates.h"

namespace astral::workload {

struct TrainingSetup {
  seer::ModelSpec model;
  parallel::ParallelismConfig parallel;
  seer::GpuSpec gpu = seer::GpuSpec::h100();
  seer::CommEnv env;
  std::shared_ptr<const seer::EfficiencyModel> eff =
      std::make_shared<seer::TheoreticalEfficiency>();

  int global_batch = 512;  ///< Sequences per iteration (all DP replicas).
  int micro_batch = 1;
  int seq_len = 4096;
  seer::DpStrategy dp_strategy = seer::DpStrategy::AllReduce;
  seer::CrossDcDim cross_dc = seer::CrossDcDim::None;

  int num_microbatches() const {
    int per_replica = global_batch / std::max(1, parallel.dp);
    return std::max(1, per_replica / std::max(1, micro_batch));
  }
};

struct IterationForecast {
  core::Seconds micro_time = 0.0;      ///< fwd+bwd, one microbatch, one stage.
  core::Seconds dp_sync_time = 0.0;    ///< Total gradient sync comm time.
  core::Seconds dp_exposed = 0.0;      ///< Sync time not hidden by backward.
  core::Seconds iteration_time = 0.0;  ///< 1F1B pipeline makespan + exposed sync.
  double tokens_per_sec = 0.0;         ///< Global training throughput.
  double mfu = 0.0;                    ///< Model FLOPs utilization per GPU.
  double comm_fraction = 0.0;          ///< Exposed comm / iteration time.
  seer::Timeline micro_timeline;       ///< One microbatch, for inspection.
};

struct InferenceForecast {
  core::Seconds latency = 0.0;    ///< Prefill: full prompt; decode: per token.
  double tokens_per_sec = 0.0;    ///< Steady-state throughput.
  seer::Timeline timeline;
};

/// Per-parallelism-dimension fabric traffic of one iteration on one
/// device — the data behind "PP generates the least traffic" (§4.4).
struct TrafficSummary {
  double tp_bytes = 0.0;
  double pp_bytes = 0.0;
  double dp_bytes = 0.0;
  double ep_bytes = 0.0;
};

class Trainer {
 public:
  explicit Trainer(TrainingSetup setup);

  const TrainingSetup& setup() const { return setup_; }

  /// Forecasts one training iteration. Runs in milliseconds — the
  /// "within seconds" efficiency property of §4.2.
  IterationForecast forecast_iteration() const;

  InferenceForecast forecast_prefill(int batch, int seq) const;
  InferenceForecast forecast_decode(int batch, int ctx_len) const;

  /// Traffic each parallelism dimension pushes through the fabric per
  /// iteration (per device).
  TrafficSummary traffic() const;

 private:
  seer::OpGraph micro_graph(bool with_dp_sync) const;
  TrainingSetup setup_;
  seer::SeerEngine engine_;
};

/// Weak-scaling efficiency: throughput-per-GPU at `scaled` relative to
/// `base` (1.0 = perfectly linear; Fig. 19 reports 1 - this).
double scaling_efficiency(const IterationForecast& base, int base_gpus, int base_batch,
                          const IterationForecast& scaled, int scaled_gpus,
                          int scaled_batch);

}  // namespace astral::workload
