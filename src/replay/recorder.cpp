#include "replay/recorder.h"

#include <algorithm>

#include "monitor/cluster_runtime.h"
#include "obs/trace.h"
#include "topo/fabric.h"

namespace astral::replay {

namespace {

/// Histograms fed from host wall clocks rather than simulated time;
/// their sample counts are deterministic, their values are not.
constexpr const char* kWallClockHistograms[] = {"fluidsim.solve_us"};

}  // namespace

core::Json deterministic_metrics_snapshot(const obs::Metrics& metrics) {
  core::Json doc = metrics.to_json();
  for (const char* name : kWallClockHistograms) {
    const core::Json& hist = doc["histograms"][name];
    if (hist.is_null()) continue;
    core::Json redacted = core::Json::object();
    redacted["count"] = hist["count"];
    doc["histograms"][name] = std::move(redacted);
  }
  return doc;
}

RecordedArtifacts record_scripted_campaign(const ScriptedCampaignConfig& cfg) {
  // Fabric sized to hold the job: 8 hosts/block x 4 blocks/pod, at least
  // two pods so the ring crosses every tier.
  topo::FabricParams params;
  params.rails = 2;
  params.hosts_per_block = 8;
  params.blocks_per_pod = 4;
  const int per_pod = params.hosts_per_block * params.blocks_per_pod;
  params.pods = std::max(2, (cfg.hosts + per_pod - 1) / per_pod);
  topo::Fabric fabric(params);

  monitor::JobConfig job;
  job.job_id = cfg.job_id;
  job.hosts = cfg.hosts;
  job.iterations = cfg.iterations;
  job.compute_time = cfg.compute_time;
  job.comm_bytes = cfg.comm_bytes;
  job.recovery.enabled = true;
  monitor::ClusterRuntime rt(fabric, job, cfg.seed);

  if (cfg.inject_faults && cfg.iterations >= 3) {
    rt.inject(rt.make_fault(monitor::RootCause::OpticalFiber,
                            monitor::Manifestation::FailStop,
                            std::min(2, cfg.iterations - 1)));
    rt.inject(rt.make_mid_transfer_tor_death(std::min(5, cfg.iterations - 1)));
  }

  obs::Tracer tracer;
  obs::Metrics metrics;
  rt.set_tracer(&tracer);
  rt.set_metrics(&metrics);
  rt.run();

  RecordedArtifacts out;
  out.trace = tracer.to_chrome_trace();
  out.metrics = deterministic_metrics_snapshot(metrics);
  return out;
}

}  // namespace astral::replay
