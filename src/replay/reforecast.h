// Trace-driven replay, forecasting side: turns a RecordedCampaign back
// into a seer::OpGraph (mirroring seer::import_profiler_trace — measured
// collective/compute spans become Comm/Compute operators with recovered
// dependencies) and re-forecasts it under what-if knobs: swapped topology
// tier bandwidths, a changed collective algorithm, faster or slower
// compute.
//
// The re-forecast is calibrated per operator, the way trace-replay
// simulators (SimAI-style; see PAPERS.md) do what-ifs: each measured
// duration is scaled by the ratio of the cost model's prediction under
// the what-if environment to its prediction under the recorded baseline.
// Model error cancels out of the ratio, and the self-replay identity
// falls out by construction: with unchanged knobs every ratio is exactly
// 1, so record → replay → re-forecast must reproduce the measured
// timeline — a standing differential test over every layer that emits
// telemetry (net + coll + monitor + seer at once). CI enforces it at <1%
// per iteration on the golden trace.
#pragma once

#include <string>
#include <vector>

#include "core/json.h"
#include "core/units.h"
#include "replay/trace_reader.h"
#include "seer/cost_model.h"
#include "seer/op_graph.h"

namespace astral::replay {

/// What-if knobs applied on top of the recorded campaign's environment.
struct WhatIfKnobs {
  std::string label = "self-replay";  ///< Scenario name in reports.
  /// GPU speed multiplier (> 1 = faster compute).
  double compute_scale = 1.0;
  /// Tier-2 (inter-host fabric / NIC) bandwidth multiplier.
  double nic_bw_scale = 1.0;
  /// Tier-1 (intra-host NVLink domain) bandwidth multiplier.
  double nvlink_bw_scale = 1.0;
  /// Collective algorithm override; None keeps the recorded algorithm.
  seer::CommKind collective = seer::CommKind::None;

  bool is_identity() const {
    return compute_scale == 1.0 && nic_bw_scale == 1.0 &&
           nvlink_bw_scale == 1.0 && collective == seer::CommKind::None;
  }
};

/// The modeled baseline: what hardware the recording is assumed to have
/// run on. Only ratios of model predictions enter the forecast, so these
/// calibrate sensitivity to the knobs rather than absolute accuracy.
struct ReforecastConfig {
  seer::GpuSpec gpu = seer::GpuSpec::h100();
  seer::CommEnv env;
  /// The collective algorithm the recorded ring phase corresponds to.
  seer::CommKind recorded_kind = seer::CommKind::AllReduce;
};

struct OpDeviation {
  int iteration = 0;
  std::string name;
  seer::OpType type = seer::OpType::Compute;
  core::Seconds measured = 0.0;
  core::Seconds forecast = 0.0;
  double deviation = 0.0;  ///< |forecast - measured| / measured.
};

struct IterationDeviation {
  int iteration = 0;
  core::Seconds start = 0.0;  ///< Measured start (trace layout anchor).
  core::Seconds measured = 0.0;
  core::Seconds forecast = 0.0;
  double deviation = 0.0;
};

/// Side-by-side measured-vs-forecast report for one what-if scenario.
struct DeviationReport {
  std::string label;
  WhatIfKnobs knobs;
  std::vector<OpDeviation> per_op;
  std::vector<IterationDeviation> per_iteration;
  core::Seconds measured_total = 0.0;  ///< Sum of iteration durations.
  core::Seconds forecast_total = 0.0;
  double overall_deviation = 0.0;        ///< Of the totals.
  double max_iteration_deviation = 0.0;  ///< Worst single iteration.
  /// SeerEngine makespan of the reconstructed graph replayed with the
  /// measured durations — the OpGraph-level half of the self-replay
  /// identity (must match measured_total when knobs are identity).
  core::Seconds replay_makespan = 0.0;

  core::Json to_json() const;
  std::string to_table() const;

  /// Appends the re-forecast timeline as its own process: compute spans
  /// on tid 0, comm spans on tid 1, each carrying {iteration, measured_us,
  /// deviation} args — Perfetto-joinable next to the measured tracks.
  void append_chrome_trace(obs::ChromeTraceBuilder& builder, int pid,
                           std::string_view process_name) const;
};

/// Converts the campaign into an operator graph, mirroring
/// seer::import_profiler_trace: per iteration one Compute op (flops
/// back-derived from the measured duration) chained to its Comm ops
/// (bytes/group from the recorded spans), iterations chained in order.
/// With `keep_measured_times`, fixed_time pins every op to its recorded
/// duration so an engine run replays the measurement.
seer::OpGraph to_op_graph(const RecordedCampaign& campaign,
                          const ReforecastConfig& cfg,
                          bool keep_measured_times);

/// Re-forecasts the campaign under `knobs`. Deterministic: same campaign
/// and knobs produce a byte-identical report.
DeviationReport reforecast(const RecordedCampaign& campaign,
                           const WhatIfKnobs& knobs,
                           const ReforecastConfig& cfg = {});

}  // namespace astral::replay
