// Deterministic scripted campaign recorder: one fixed fault-scheduled
// training job on a small fabric with the flight recorder and metrics
// registry attached, producing the golden `campaign.trace.json` /
// `campaign.metrics.json` pair that the replay subsystem's differential
// tests are locked to.
//
// Everything downstream leans on this being bit-reproducible: same
// config → byte-identical trace and metrics documents across runs. The
// one nondeterministic metric the stack emits — the solver's wall-clock
// `fluidsim.solve_us` histogram — is redacted to its (deterministic)
// sample count in the snapshot.
#pragma once

#include <cstdint>

#include "core/json.h"
#include "core/units.h"
#include "obs/metrics.h"

namespace astral::replay {

struct ScriptedCampaignConfig {
  int hosts = 64;        ///< Job size (the golden fixture's 64-host run).
  int iterations = 8;
  std::uint64_t seed = 2024;
  std::int64_t job_id = 7;
  core::Bytes comm_bytes = core::Bytes{4} * 1024 * 1024;
  core::Seconds compute_time = 0.05;
  /// Scripted faults: an optical-fiber fail-stop at iteration 2 and a
  /// mid-transfer ToR death at iteration 5 (the dual-ToR failover case),
  /// so the recording exercises the full fault/mitigation chain.
  bool inject_faults = true;
};

struct RecordedArtifacts {
  core::Json trace;    ///< {"traceEvents": [...]} flight recording.
  core::Json metrics;  ///< Deterministic metrics snapshot (see below).
};

/// Metrics snapshot with wall-clock histograms reduced to their sample
/// counts, so the document is byte-stable across machines and runs.
core::Json deterministic_metrics_snapshot(const obs::Metrics& metrics);

/// Runs the scripted campaign and returns the recorded documents.
RecordedArtifacts record_scripted_campaign(const ScriptedCampaignConfig& cfg = {});

}  // namespace astral::replay
