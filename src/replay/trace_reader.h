// Trace-driven replay, reading side: parses a recorded campaign trace
// (the Chrome trace-event JSON obs::ChromeTraceBuilder emits —
// `campaign.trace.json`) back into structured per-track events with the
// ambient job → group → collective → flow key chain reconstructed from
// the event args.
//
// Two contracts make the reader a correctness harness rather than just a
// loader:
//  * Losslessness: append_chrome_trace() re-emits a parsed trace through
//    the same ChromeTraceBuilder, and for any builder-produced document
//    the round trip is byte-identical (ts/dur are integer microseconds,
//    args are preserved verbatim, metadata order is kept). CI property
//    tests byte-compare the loop.
//  * Well-formedness: spans_well_nested() checks the stack discipline of
//    spans per track and key_chain_consistent() checks that correlation
//    keys are prefix-closed (a collective key implies a group key implies
//    a job key) — the invariants every instrumented layer must uphold.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/units.h"
#include "obs/trace.h"

namespace astral::replay {

/// One event recovered from the trace document. Times are back in
/// seconds (the document stores integer microseconds); `args` keeps the
/// original args object verbatim so re-emission is lossless.
struct ParsedEvent {
  enum class Kind : std::uint8_t { Span, Instant, Counter };

  Kind kind = Kind::Instant;
  std::string name;
  core::Seconds start = 0.0;
  core::Seconds duration = 0.0;  ///< Spans only.
  core::Seconds end() const { return start + duration; }

  obs::TraceKeys keys;        ///< Decoded from args; unset fields stay -1.
  double value = 0.0;         ///< args.value (spans) or the counter sample.
  std::string detail;         ///< args.detail; empty when absent.
  std::string counter_series; ///< Counters: the series key inside args.
  core::Json args;            ///< Verbatim args (empty Json when absent).
};

/// One (pid, tid) lane of the document — a layer track of the flight
/// recorder, a Seer stream, or the counter lane (tid 0).
struct ParsedTrack {
  int pid = 0;
  int tid = 0;
  std::string name;  ///< thread_name metadata; "" for the counter lane.
  std::vector<ParsedEvent> events;  ///< Document order (ts-sorted).
};

/// Metadata entry, kept in document order for lossless re-emission.
struct ParsedMeta {
  bool is_process = false;  ///< process_name vs thread_name.
  int pid = 0;
  int tid = 0;
  std::string name;
};

struct ParsedTrace {
  std::vector<ParsedMeta> metadata;
  std::map<int, std::string> process_names;
  std::vector<ParsedTrack> tracks;  ///< Ascending (pid, tid).

  const ParsedTrack* find_track(int pid, int tid) const;
  const ParsedTrack* find_track(int pid, std::string_view name) const;
  /// pid of the process named `name`; -1 when absent.
  int find_process(std::string_view name) const;
  std::size_t event_count() const;

  /// Re-emits every track into `builder` exactly as originally recorded
  /// (same pids/tids/names/args). builder.build() of a fresh builder then
  /// reproduces a builder-produced source document byte for byte.
  void append_chrome_trace(obs::ChromeTraceBuilder& builder) const;
  core::Json to_chrome_trace() const;
};

/// Parses a {"traceEvents": [...]} document produced by
/// obs::ChromeTraceBuilder. Returns nullopt with a diagnostic in *error
/// on documents the replay engine cannot faithfully represent (unknown
/// phases, malformed metadata, counters with non-scalar args).
std::optional<ParsedTrace> parse_chrome_trace(const core::Json& doc,
                                              std::string* error = nullptr);

/// Stack discipline of the track's spans: sorted by start, every span
/// either nests inside the enclosing open span or begins after it ends —
/// no partial overlap. Tolerance is 1.5 µs: ts and dur are rounded to the
/// document's 1 µs quantum independently, so exactly contiguous spans can
/// read back overlapping by up to that much.
bool spans_well_nested(const ParsedTrack& track, std::string* error = nullptr);

/// Prefix-closure of the ambient key chain on every event of the track:
/// collective >= 0 implies group >= 0 implies job >= 0 (lower layers must
/// have inherited the outer scopes they were recorded under).
bool key_chain_consistent(const ParsedTrack& track, std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Campaign extraction: from parsed tracks back to the run's structure.

/// One collective span recorded inside an iteration (the runtime's
/// ring_step, or CollectiveRunner algorithm spans).
struct RecordedCollective {
  std::string name;
  core::Seconds start = 0.0;
  core::Seconds duration = 0.0;
  double bytes = 0.0;  ///< Span value: payload over the fabric.
  std::int64_t group = -1;
  std::int64_t collective = -1;
};

/// One committed iteration with its nested phases re-associated.
struct RecordedIteration {
  int index = 0;  ///< Span value: the runtime's iteration counter.
  core::Seconds start = 0.0;
  core::Seconds duration = 0.0;
  core::Seconds compute = 0.0;  ///< Nested Workload "compute" span.
  std::vector<RecordedCollective> collectives;
  int flow_count = 0;    ///< Completed Flow-track spans in the window.
  double flow_bytes = 0.0;  ///< Sum of their payloads.

  core::Seconds comm() const {
    core::Seconds t = 0.0;
    for (const auto& c : collectives) t += c.duration;
    return t;
  }
};

/// A measured campaign reconstructed from the flight recording: the
/// structured form the what-if re-forecaster consumes.
struct RecordedCampaign {
  std::int64_t job = -1;
  int ranks = 0;  ///< Participants, inferred from the Flow track.
  std::vector<RecordedIteration> iterations;

  /// Sum of committed-iteration durations (excludes fault downtime
  /// between iterations — the measured baseline the forecast replays).
  core::Seconds measured_total() const;
};

/// Reconstructs the campaign from a parsed flight recording: Workload
/// "iteration"/"compute" spans, Collective spans and Flow spans are
/// re-associated by time containment and the shared job key. `pid` -1
/// auto-detects the recorder process (the one with a "workload" track).
std::optional<RecordedCampaign> extract_campaign(const ParsedTrace& trace,
                                                 std::string* error = nullptr,
                                                 int pid = -1);

}  // namespace astral::replay
