#include "replay/reforecast.h"

#include <cmath>
#include <memory>

#include "core/table.h"
#include "seer/efficiency.h"
#include "seer/engine.h"

namespace astral::replay {

namespace {

/// Participants to assume when the Flow track was absent or empty: a
/// degenerate two-rank collective keeps the model's ring terms defined.
int group_of(const RecordedCampaign& campaign) {
  return campaign.ranks > 1 ? campaign.ranks : 2;
}

seer::CostModel make_model(const ReforecastConfig& cfg, const WhatIfKnobs& knobs) {
  seer::GpuSpec gpu = cfg.gpu;
  gpu.flops *= knobs.compute_scale;
  seer::CommEnv env = cfg.env;
  env.nic_bw *= knobs.nic_bw_scale;
  env.nvlink_bw *= knobs.nvlink_bw_scale;
  return seer::CostModel(gpu, env,
                         std::make_shared<seer::TheoreticalEfficiency>());
}

double safe_ratio(core::Seconds whatif, core::Seconds base) {
  if (base <= 0.0 || whatif <= 0.0) return 1.0;
  return whatif / base;
}

double rel_dev(core::Seconds forecast, core::Seconds measured) {
  if (measured <= 0.0) return forecast > 0.0 ? 1.0 : 0.0;
  return std::abs(forecast - measured) / measured;
}

}  // namespace

seer::OpGraph to_op_graph(const RecordedCampaign& campaign,
                          const ReforecastConfig& cfg,
                          bool keep_measured_times) {
  seer::OpGraph g;
  const int group = group_of(campaign);
  int prev = -1;  // Last op of the previous iteration.
  for (const RecordedIteration& it : campaign.iterations) {
    seer::Operator compute;
    compute.id = static_cast<int>(g.ops.size());
    compute.name = "iter" + std::to_string(it.index) + ".compute";
    compute.type = seer::OpType::Compute;
    // Back-derive flops so the baseline model reproduces the measured
    // duration exactly (TheoreticalEfficiency: t = flops / gpu.flops).
    compute.flops = it.compute * cfg.gpu.flops;
    if (keep_measured_times) compute.fixed_time = it.compute;
    if (prev >= 0) compute.deps.push_back(prev);
    prev = compute.id;
    g.ops.push_back(std::move(compute));

    for (const RecordedCollective& c : it.collectives) {
      seer::Operator comm;
      comm.id = static_cast<int>(g.ops.size());
      comm.name = "iter" + std::to_string(it.index) + "." + c.name;
      comm.type = seer::OpType::Comm;
      comm.comm = cfg.recorded_kind;
      comm.comm_bytes = c.bytes;
      comm.comm_group = c.group > 1 ? static_cast<int>(c.group) : group;
      if (keep_measured_times) comm.fixed_time = c.duration;
      comm.deps.push_back(prev);
      prev = comm.id;
      g.ops.push_back(std::move(comm));
    }
  }
  return g;
}

DeviationReport reforecast(const RecordedCampaign& campaign,
                           const WhatIfKnobs& knobs,
                           const ReforecastConfig& cfg) {
  DeviationReport report;
  report.label = knobs.label;
  report.knobs = knobs;

  const seer::CostModel base = make_model(cfg, WhatIfKnobs{});
  const seer::CostModel whatif = make_model(cfg, knobs);
  const seer::CommKind whatif_kind = knobs.collective != seer::CommKind::None
                                         ? knobs.collective
                                         : cfg.recorded_kind;
  const int group = group_of(campaign);

  for (const RecordedIteration& it : campaign.iterations) {
    IterationDeviation iter_dev;
    iter_dev.iteration = it.index;
    iter_dev.start = it.start;
    iter_dev.measured = it.duration;

    OpDeviation comp;
    comp.iteration = it.index;
    comp.name = "compute";
    comp.type = seer::OpType::Compute;
    comp.measured = it.compute;
    comp.forecast =
        it.compute * safe_ratio(whatif.compute_time(it.compute * cfg.gpu.flops),
                                base.compute_time(it.compute * cfg.gpu.flops));
    comp.deviation = rel_dev(comp.forecast, comp.measured);
    iter_dev.forecast += comp.forecast;
    report.per_op.push_back(std::move(comp));

    for (const RecordedCollective& c : it.collectives) {
      const int g = c.group > 1 ? static_cast<int>(c.group) : group;
      OpDeviation comm;
      comm.iteration = it.index;
      comm.name = c.name;
      comm.type = seer::OpType::Comm;
      comm.measured = c.duration;
      comm.forecast = c.duration *
                      safe_ratio(whatif.comm_time(whatif_kind, c.bytes, g,
                                                  /*cross_dc=*/false),
                                 base.comm_time(cfg.recorded_kind, c.bytes, g,
                                                /*cross_dc=*/false));
      comm.deviation = rel_dev(comm.forecast, comm.measured);
      iter_dev.forecast += comm.forecast;
      report.per_op.push_back(std::move(comm));
    }

    iter_dev.deviation = rel_dev(iter_dev.forecast, iter_dev.measured);
    report.measured_total += iter_dev.measured;
    report.forecast_total += iter_dev.forecast;
    report.max_iteration_deviation =
        std::max(report.max_iteration_deviation, iter_dev.deviation);
    report.per_iteration.push_back(std::move(iter_dev));
  }
  report.overall_deviation = rel_dev(report.forecast_total, report.measured_total);

  // The OpGraph half of the identity: replaying the reconstructed graph
  // with measured durations through the Seer engine must reproduce the
  // measured total (the graph is one serial chain, so makespan = sum).
  seer::OpGraph replay_graph =
      to_op_graph(campaign, cfg, /*keep_measured_times=*/true);
  report.replay_makespan = seer::SeerEngine(base).run(replay_graph).makespan;
  return report;
}

core::Json DeviationReport::to_json() const {
  core::Json doc = core::Json::object();
  doc["label"] = core::Json(label);
  core::Json k = core::Json::object();
  k["compute_scale"] = core::Json(knobs.compute_scale);
  k["nic_bw_scale"] = core::Json(knobs.nic_bw_scale);
  k["nvlink_bw_scale"] = core::Json(knobs.nvlink_bw_scale);
  k["collective"] = core::Json(knobs.collective == seer::CommKind::None
                                   ? "recorded"
                                   : seer::to_string(knobs.collective));
  doc["knobs"] = std::move(k);
  doc["measured_total_s"] = core::Json(measured_total);
  doc["forecast_total_s"] = core::Json(forecast_total);
  doc["overall_deviation"] = core::Json(overall_deviation);
  doc["max_iteration_deviation"] = core::Json(max_iteration_deviation);
  doc["replay_makespan_s"] = core::Json(replay_makespan);

  core::Json iters = core::Json::array();
  for (const IterationDeviation& it : per_iteration) {
    core::Json j = core::Json::object();
    j["iteration"] = core::Json(it.iteration);
    j["start_s"] = core::Json(it.start);
    j["measured_s"] = core::Json(it.measured);
    j["forecast_s"] = core::Json(it.forecast);
    j["deviation"] = core::Json(it.deviation);
    iters.push_back(std::move(j));
  }
  doc["per_iteration"] = std::move(iters);

  core::Json ops = core::Json::array();
  for (const OpDeviation& op : per_op) {
    core::Json j = core::Json::object();
    j["iteration"] = core::Json(op.iteration);
    j["name"] = core::Json(op.name);
    j["type"] = core::Json(seer::to_string(op.type));
    j["measured_s"] = core::Json(op.measured);
    j["forecast_s"] = core::Json(op.forecast);
    j["deviation"] = core::Json(op.deviation);
    ops.push_back(std::move(j));
  }
  doc["per_op"] = std::move(ops);
  return doc;
}

std::string DeviationReport::to_table() const {
  core::Table table({"iter", "measured_ms", "forecast_ms", "deviation"});
  for (const IterationDeviation& it : per_iteration) {
    table.add_row({std::to_string(it.iteration),
                   core::Table::num(it.measured * 1e3),
                   core::Table::num(it.forecast * 1e3),
                   core::Table::pct(it.deviation)});
  }
  table.add_row({"total", core::Table::num(measured_total * 1e3),
                 core::Table::num(forecast_total * 1e3),
                 core::Table::pct(overall_deviation)});
  return table.str();
}

void DeviationReport::append_chrome_trace(obs::ChromeTraceBuilder& builder,
                                          int pid,
                                          std::string_view process_name) const {
  builder.process_name(pid, process_name);
  builder.thread_name(pid, 0, "exec");
  builder.thread_name(pid, 1, "comm");
  // Forecast ops are laid out serially from each iteration's measured
  // start, so measured and re-forecast spans line up vertically in
  // Perfetto and the deviation is visible as the length difference.
  std::size_t op = 0;
  for (const IterationDeviation& it : per_iteration) {
    core::Seconds cursor = it.start;
    for (; op < per_op.size() && per_op[op].iteration == it.iteration; ++op) {
      const OpDeviation& o = per_op[op];
      core::Json args = core::Json::object();
      args["iteration"] = core::Json(o.iteration);
      args["measured_us"] = core::Json(o.measured * 1e6);
      args["deviation"] = core::Json(o.deviation);
      builder.complete(pid, o.type == seer::OpType::Comm ? 1 : 0, o.name,
                       cursor, o.forecast, std::move(args));
      cursor += o.forecast;
    }
  }
}

}  // namespace astral::replay
