#include "replay/trace_reader.h"

#include <algorithm>
#include <cmath>

namespace astral::replay {

namespace {

/// Rounding slack for read-back times. The document stores ts and dur as
/// independently rounded integer microseconds, so a span's read-back end
/// (ts + dur) can overshoot an adjacent boundary by up to 1.5 µs even
/// when the recorded times were exactly contiguous.
constexpr double kEps = 1.5e-6;

std::int64_t key_or(const core::Json& args, std::string_view name) {
  const core::Json& v = args[name];
  return v.is_number() ? v.as_int() : -1;
}

obs::TraceKeys decode_keys(const core::Json& args) {
  obs::TraceKeys k;
  k.job = key_or(args, "job");
  k.group = key_or(args, "group");
  k.collective = key_or(args, "collective");
  k.flow = key_or(args, "flow");
  k.qp = key_or(args, "qp");
  k.link = key_or(args, "link");
  k.fault = key_or(args, "fault");
  return k;
}

/// "link42.util" -> 42; -1 when the name is not a per-link series.
std::int64_t link_of_counter_name(std::string_view name) {
  if (name.substr(0, 4) != "link") return -1;
  std::size_t i = 4;
  std::int64_t id = 0;
  bool any = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    id = id * 10 + (name[i] - '0');
    ++i;
    any = true;
  }
  return any && i < name.size() && name[i] == '.' ? id : -1;
}

}  // namespace

const ParsedTrack* ParsedTrace::find_track(int pid, int tid) const {
  for (const auto& t : tracks) {
    if (t.pid == pid && t.tid == tid) return &t;
  }
  return nullptr;
}

const ParsedTrack* ParsedTrace::find_track(int pid, std::string_view name) const {
  for (const auto& t : tracks) {
    if (t.pid == pid && t.name == name) return &t;
  }
  return nullptr;
}

int ParsedTrace::find_process(std::string_view name) const {
  for (const auto& [pid, pname] : process_names) {
    if (pname == name) return pid;
  }
  return -1;
}

std::size_t ParsedTrace::event_count() const {
  std::size_t n = 0;
  for (const auto& t : tracks) n += t.events.size();
  return n;
}

void ParsedTrace::append_chrome_trace(obs::ChromeTraceBuilder& builder) const {
  for (const ParsedMeta& m : metadata) {
    if (m.is_process) {
      builder.process_name(m.pid, m.name);
    } else {
      builder.thread_name(m.pid, m.tid, m.name);
    }
  }
  // Tracks are kept in ascending (pid, tid) and events in document order,
  // which is exactly the builder's stable sort order — re-emission feeds
  // the sort an already-sorted sequence, so ties keep their original
  // relative order and the rebuilt document is byte-identical.
  for (const ParsedTrack& t : tracks) {
    for (const ParsedEvent& ev : t.events) {
      switch (ev.kind) {
        case ParsedEvent::Kind::Span:
          builder.complete(t.pid, t.tid, ev.name, ev.start, ev.duration, ev.args);
          break;
        case ParsedEvent::Kind::Instant:
          builder.instant(t.pid, t.tid, ev.name, ev.start, ev.args);
          break;
        case ParsedEvent::Kind::Counter:
          builder.counter(t.pid, ev.name, ev.counter_series, ev.start, ev.value);
          break;
      }
    }
  }
}

core::Json ParsedTrace::to_chrome_trace() const {
  obs::ChromeTraceBuilder builder;
  append_chrome_trace(builder);
  return builder.build();
}

std::optional<ParsedTrace> parse_chrome_trace(const core::Json& doc,
                                              std::string* error) {
  auto fail = [&](std::string msg) -> std::optional<ParsedTrace> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  const core::Json& events = doc["traceEvents"];
  if (!events.is_array()) return fail("missing 'traceEvents' array");

  ParsedTrace out;
  auto track_of = [&](int pid, int tid) -> ParsedTrack& {
    for (auto& t : out.tracks) {
      if (t.pid == pid && t.tid == tid) return t;
    }
    // Insert keeping ascending (pid, tid) so re-emission order matches
    // the document's sort order.
    auto it = out.tracks.begin();
    while (it != out.tracks.end() &&
           std::make_pair(it->pid, it->tid) < std::make_pair(pid, tid)) {
      ++it;
    }
    it = out.tracks.insert(it, ParsedTrack{pid, tid, "", {}});
    return *it;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const core::Json& j = events.at(i);
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!j.is_object()) return fail(at + " is not an object");
    if (!j["ph"].is_string()) return fail(at + " has no 'ph' phase");
    const std::string& ph = j["ph"].as_string();
    const int pid = static_cast<int>(j["pid"].as_int());
    const int tid = static_cast<int>(j["tid"].as_int());
    const std::string& name = j["name"].as_string();

    if (ph == "M") {
      ParsedMeta m;
      m.pid = pid;
      m.tid = tid;
      m.name = j["args"]["name"].as_string();
      if (name == "process_name") {
        m.is_process = true;
        out.process_names[pid] = m.name;
      } else if (name == "thread_name") {
        track_of(pid, tid).name = m.name;
      } else {
        return fail(at + " unknown metadata '" + name + "'");
      }
      out.metadata.push_back(std::move(m));
      continue;
    }

    if (!j["ts"].is_number()) return fail(at + " has no numeric 'ts'");
    ParsedEvent ev;
    ev.name = name;
    ev.start = j["ts"].as_number() * 1e-6;
    ev.args = j["args"];

    if (ph == "X") {
      if (!j["dur"].is_number()) return fail(at + " span has no numeric 'dur'");
      ev.kind = ParsedEvent::Kind::Span;
      ev.duration = j["dur"].as_number() * 1e-6;
      ev.keys = decode_keys(ev.args);
      ev.value = ev.args.number_or("value", 0.0);
      ev.detail = ev.args.string_or("detail", "");
    } else if (ph == "i") {
      ev.kind = ParsedEvent::Kind::Instant;
      ev.keys = decode_keys(ev.args);
      ev.detail = ev.args.string_or("detail", "");
    } else if (ph == "C") {
      ev.kind = ParsedEvent::Kind::Counter;
      const auto& obj = ev.args.as_object();
      if (!ev.args.is_object() || obj.size() != 1 ||
          !obj.begin()->second.is_number()) {
        return fail(at + " counter args must hold exactly one numeric series");
      }
      ev.counter_series = obj.begin()->first;
      ev.value = obj.begin()->second.as_number();
      ev.keys.link = link_of_counter_name(ev.name);
    } else {
      return fail(at + " unsupported phase '" + ph + "'");
    }
    track_of(pid, tid).events.push_back(std::move(ev));
  }
  return out;
}

bool spans_well_nested(const ParsedTrack& track, std::string* error) {
  std::vector<const ParsedEvent*> spans;
  for (const ParsedEvent& ev : track.events) {
    if (ev.kind == ParsedEvent::Kind::Span) spans.push_back(&ev);
  }
  // Enclosing spans first: ascending start, then descending end.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const ParsedEvent* a, const ParsedEvent* b) {
                     if (a->start != b->start) return a->start < b->start;
                     return a->end() > b->end();
                   });
  std::vector<const ParsedEvent*> stack;
  for (const ParsedEvent* s : spans) {
    while (!stack.empty() && s->start >= stack.back()->end() - kEps) {
      stack.pop_back();
    }
    if (!stack.empty() && s->end() > stack.back()->end() + kEps) {
      if (error) {
        *error = "track '" + track.name + "': span '" + s->name +
                 "' partially overlaps enclosing '" + stack.back()->name + "'";
      }
      return false;
    }
    stack.push_back(s);
  }
  return true;
}

bool key_chain_consistent(const ParsedTrack& track, std::string* error) {
  for (const ParsedEvent& ev : track.events) {
    const obs::TraceKeys& k = ev.keys;
    const char* broken = nullptr;
    if (k.collective >= 0 && k.group < 0) broken = "collective without group";
    if (k.group >= 0 && k.job < 0) broken = "group without job";
    if (broken != nullptr) {
      if (error) {
        *error = "track '" + track.name + "': event '" + ev.name + "' has " +
                 broken;
      }
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Campaign extraction

core::Seconds RecordedCampaign::measured_total() const {
  core::Seconds t = 0.0;
  for (const auto& it : iterations) t += it.duration;
  return t;
}

std::optional<RecordedCampaign> extract_campaign(const ParsedTrace& trace,
                                                 std::string* error, int pid) {
  auto fail = [&](std::string msg) -> std::optional<RecordedCampaign> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  if (pid < 0) {
    for (const auto& t : trace.tracks) {
      if (t.name == obs::to_string(obs::Track::Workload)) {
        pid = t.pid;
        break;
      }
    }
    if (pid < 0) return fail("no process with a 'workload' track");
  }
  const ParsedTrack* workload =
      trace.find_track(pid, obs::to_string(obs::Track::Workload));
  if (workload == nullptr) return fail("process has no 'workload' track");
  const ParsedTrack* collective =
      trace.find_track(pid, obs::to_string(obs::Track::Collective));
  const ParsedTrack* flow = trace.find_track(pid, obs::to_string(obs::Track::Flow));

  RecordedCampaign campaign;
  for (const ParsedEvent& ev : workload->events) {
    if (ev.kind != ParsedEvent::Kind::Span || ev.name != "iteration") continue;
    RecordedIteration it;
    it.index = static_cast<int>(std::llround(ev.value));
    it.start = ev.start;
    it.duration = ev.duration;
    if (campaign.job < 0) campaign.job = ev.keys.job;
    campaign.iterations.push_back(it);
  }
  if (campaign.iterations.empty()) {
    return fail("workload track has no 'iteration' spans");
  }
  std::sort(campaign.iterations.begin(), campaign.iterations.end(),
            [](const RecordedIteration& a, const RecordedIteration& b) {
              return a.start < b.start;
            });

  auto containing = [&](core::Seconds t) -> RecordedIteration* {
    for (auto& it : campaign.iterations) {
      if (t >= it.start - kEps && t < it.start + it.duration - kEps) return &it;
    }
    return nullptr;
  };

  for (const ParsedEvent& ev : workload->events) {
    if (ev.kind != ParsedEvent::Kind::Span || ev.name != "compute") continue;
    RecordedIteration* it = containing(ev.start);
    if (it == nullptr) {
      return fail("'compute' span at " + std::to_string(ev.start) +
                  "s outside every iteration");
    }
    it->compute += ev.duration;
  }

  if (collective != nullptr) {
    for (const ParsedEvent& ev : collective->events) {
      if (ev.kind != ParsedEvent::Kind::Span) continue;
      RecordedIteration* it = containing(ev.start);
      if (it == nullptr) continue;  // Stall markers etc. between iterations.
      RecordedCollective c;
      c.name = ev.name;
      c.start = ev.start;
      c.duration = ev.duration;
      c.bytes = ev.value;
      c.group = ev.keys.group;
      c.collective = ev.keys.collective;
      it->collectives.push_back(c);
    }
  }

  if (flow != nullptr) {
    for (const ParsedEvent& ev : flow->events) {
      if (ev.kind != ParsedEvent::Kind::Span || ev.name != "flow") continue;
      RecordedIteration* it = containing(ev.start);
      if (it == nullptr) continue;
      it->flow_count++;
      it->flow_bytes += ev.value;
    }
  }

  // Participant count: the mode of per-iteration completed-flow counts
  // (faulted iterations over- or under-count; healthy ones agree).
  std::map<int, int> votes;
  for (const auto& it : campaign.iterations) {
    if (it.flow_count > 0) votes[it.flow_count]++;
  }
  int best_votes = 0;
  for (const auto& [count, n] : votes) {
    if (n > best_votes) {
      best_votes = n;
      campaign.ranks = count;
    }
  }

  for (const auto& it : campaign.iterations) {
    if (it.collectives.empty()) {
      return fail("iteration " + std::to_string(it.index) +
                  " has no collective span");
    }
    if (it.compute <= 0.0) {
      return fail("iteration " + std::to_string(it.index) +
                  " has no compute span");
    }
  }
  return campaign;
}

}  // namespace astral::replay
